(* Unit tests for the second extension wave: event-driven MAC simulation,
   DC-DC regulator curves, process variability. *)

open Amb_units

let check_rel msg rel expected actual =
  if not (Si.approx_equal ~rel expected actual) then
    Alcotest.failf "%s: expected %.6g, got %.6g" msg expected actual

(* --- Mac_sim --- *)

open Amb_circuit
open Amb_radio

let mac_cfg ~nodes ~per_node_rate =
  Mac_sim.config ~radio:Radio_frontend.low_power_uhf ~packet:Packet.sensor_report ~nodes
    ~per_node_rate ~horizon:(Time_span.hours 1.0)

let test_macsim_light_load_all_delivered () =
  (* At g << 1 almost everything gets through. *)
  let o = Mac_sim.run (mac_cfg ~nodes:5 ~per_node_rate:0.02) ~seed:1 in
  Alcotest.(check bool) "some traffic" true (o.Mac_sim.attempted > 100);
  Alcotest.(check bool) "nearly all delivered" true (o.Mac_sim.success_rate > 0.98);
  Alcotest.(check int) "attempted = delivered + collided" o.Mac_sim.attempted
    (o.Mac_sim.delivered + o.Mac_sim.collided)

let test_macsim_matches_analytic () =
  let rows =
    Mac_sim.sweep (mac_cfg ~nodes:20 ~per_node_rate:1.0) ~loads:[ 0.05; 0.2; 0.5 ] ~seed:2
  in
  List.iter
    (fun (g, simulated, analytic, _) ->
      if Float.abs (simulated -. analytic) > 0.03 then
        Alcotest.failf "g=%.2f: sim %.3f vs analytic %.3f" g simulated analytic)
    rows

let test_macsim_throughput_peak () =
  let rows =
    Mac_sim.sweep (mac_cfg ~nodes:20 ~per_node_rate:1.0) ~loads:[ 0.1; 0.5; 1.5 ] ~seed:3
  in
  match List.map (fun (_, _, _, s) -> s) rows with
  | [ low; mid; high ] ->
    Alcotest.(check bool) "peak near 0.5" true (mid > low && mid > high)
  | _ -> Alcotest.fail "three rows"

let test_macsim_deterministic () =
  let a = Mac_sim.run (mac_cfg ~nodes:10 ~per_node_rate:0.1) ~seed:9 in
  let b = Mac_sim.run (mac_cfg ~nodes:10 ~per_node_rate:0.1) ~seed:9 in
  Alcotest.(check int) "same attempts" a.Mac_sim.attempted b.Mac_sim.attempted;
  Alcotest.(check int) "same deliveries" a.Mac_sim.delivered b.Mac_sim.delivered

let test_macsim_energy_accounting () =
  let o = Mac_sim.run (mac_cfg ~nodes:5 ~per_node_rate:0.05) ~seed:4 in
  let per_packet =
    Radio_frontend.transmit_energy Radio_frontend.low_power_uhf ~tx_dbm:0.0
      ~bits:(Packet.total_bits Packet.sensor_report) ~include_startup:true
  in
  check_rel "tx energy = attempts x packet energy" 1e-9
    (Float.of_int o.Mac_sim.attempted *. Energy.to_joules per_packet)
    (Energy.to_joules o.Mac_sim.tx_energy)

(* --- Regulator --- *)

open Amb_energy

let test_regulator_peak_efficiency_at_rating () =
  let reg = Regulator.buck_mw_class in
  let eff = Regulator.efficiency_at reg ~load:reg.Regulator.rated_load in
  (* Fixed overheads are negligible at the rating: within 1% of peak. *)
  Alcotest.(check bool) "near peak" true (eff > reg.Regulator.peak_efficiency -. 0.01)

let test_regulator_light_load_collapse () =
  let reg = Regulator.buck_mw_class in
  let eff = Regulator.efficiency_at reg ~load:(Power.microwatts 5.0) in
  Alcotest.(check bool) "collapses under 5%" true (eff < 0.05)

let test_regulator_knee_is_half_peak () =
  List.iter
    (fun reg ->
      let eff = Regulator.efficiency_at reg ~load:(Regulator.knee_load reg) in
      check_rel (reg.Regulator.name ^ " knee") 1e-9 (reg.Regulator.peak_efficiency /. 2.0) eff)
    Regulator.catalogue

let test_regulator_sleep_floor () =
  (* The micropower boost shows a 5 uW sleeper as ~11 uW; the mW buck as
     ~356 uW. *)
  let sleep = Power.microwatts 5.0 in
  let boost = Regulator.effective_sleep_floor Regulator.micropower_boost ~sleep in
  let buck = Regulator.effective_sleep_floor Regulator.buck_mw_class ~sleep in
  Alcotest.(check bool) "boost floor ~2x sleep" true
    (Power.to_microwatts boost > 10.0 && Power.to_microwatts boost < 13.0);
  Alcotest.(check bool) "buck floor ~70x sleep" true (Power.to_microwatts buck > 300.0)

let test_regulator_best_for () =
  (match Regulator.best_for ~load:(Power.microwatts 5.0) with
  | Some r -> Alcotest.(check string) "LDO wins at 5 uW" "LDO (linear)" r.Regulator.name
  | None -> Alcotest.fail "feasible regulator exists");
  (match Regulator.best_for ~load:(Power.milliwatts 200.0) with
  | Some r -> Alcotest.(check string) "buck wins at 200 mW" "buck (mW class)" r.Regulator.name
  | None -> Alcotest.fail "feasible regulator exists");
  Alcotest.check_raises "above rating"
    (Invalid_argument "Regulator.input_power: load above rating") (fun () ->
      ignore (Regulator.input_power Regulator.micropower_boost ~load:(Power.watts 1.0)))

(* --- Variability --- *)

open Amb_tech

let test_sigma_grows_with_shrink () =
  let s350 = Variability.sigma_for Process_node.n350 in
  let s65 = Variability.sigma_for Process_node.n65 in
  check_rel "350nm reference" 1e-9 8.0 s350;
  Alcotest.(check bool) "grows toward 65nm" true (s65 > 2.0 *. s350)

let test_leakage_multiplier_exponential () =
  check_rel "nominal" 1e-9 1.0 (Variability.leakage_multiplier ~delta_vth_mv:0.0);
  check_rel "one e-fold per 38 mV" 1e-9 (Float.exp 1.0)
    (Variability.leakage_multiplier ~delta_vth_mv:(-38.0));
  Alcotest.(check bool) "high Vth leaks less" true
    (Variability.leakage_multiplier ~delta_vth_mv:38.0 < 1.0)

let test_monte_carlo_spread_grows_across_nodes () =
  let ratio node =
    (Variability.monte_carlo (Variability.spread_of node) ~dies:5000 ~seed:5)
      .Variability.spread_ratio
  in
  let r350 = ratio Process_node.n350 and r65 = ratio Process_node.n65 in
  Alcotest.(check bool) "spread grows" true (r65 > r350);
  Alcotest.(check bool) "p95 above median" true (r350 > 1.0)

let test_monte_carlo_mean_above_median () =
  (* Lognormal-ish distributions: mean >= median. *)
  let stats =
    Variability.monte_carlo (Variability.spread_of Process_node.n90) ~dies:10_000 ~seed:6
  in
  Alcotest.(check bool) "mean >= median" true
    (stats.Variability.mean_multiplier >= stats.Variability.median_multiplier -. 1e-6)

let test_yield_monotone_in_budget () =
  let spread = Variability.spread_of Process_node.n65 in
  let gates = 2_000_000.0 in
  let nominal = Power.scale gates Process_node.n65.Process_node.leakage_per_gate in
  let yield_at scale =
    Variability.yield_against_budget spread ~dies:5000 ~seed:7 ~block_gates:gates
      ~budget:(Power.scale scale nominal)
  in
  let tight = yield_at 1.0 and loose = yield_at 2.0 in
  Alcotest.(check bool) "looser budget, better yield" true (loose >= tight);
  Alcotest.(check bool) "2x budget nearly full yield" true (loose > 0.95);
  Alcotest.(check bool) "nominal budget loses dies" true (tight < 0.9)

let suite =
  [ ("macsim light load", `Quick, test_macsim_light_load_all_delivered);
    ("macsim matches analytic", `Quick, test_macsim_matches_analytic);
    ("macsim throughput peak", `Quick, test_macsim_throughput_peak);
    ("macsim deterministic", `Quick, test_macsim_deterministic);
    ("macsim energy accounting", `Quick, test_macsim_energy_accounting);
    ("regulator peak at rating", `Quick, test_regulator_peak_efficiency_at_rating);
    ("regulator light-load collapse", `Quick, test_regulator_light_load_collapse);
    ("regulator knee", `Quick, test_regulator_knee_is_half_peak);
    ("regulator sleep floor", `Quick, test_regulator_sleep_floor);
    ("regulator best_for", `Quick, test_regulator_best_for);
    ("variability sigma scaling", `Quick, test_sigma_grows_with_shrink);
    ("leakage multiplier", `Quick, test_leakage_multiplier_exponential);
    ("monte carlo spread", `Quick, test_monte_carlo_spread_grows_across_nodes);
    ("monte carlo mean/median", `Quick, test_monte_carlo_mean_above_median);
    ("yield vs budget", `Quick, test_yield_monotone_in_budget);
  ]
