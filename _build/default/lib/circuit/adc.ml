(** Analog-to-digital converter model.

    Converter power is governed by the figure of merit
    P = FoM * 2^ENOB * f_s.  Era-typical FoMs: ~5 pJ/conversion-step for
    general-purpose converters around 2003, ~0.5 pJ for state-of-the-art
    low-power designs.  The ADC is the canonical "interface electronics" of
    the keynote: it converts physical information into bits, so its
    (rate, power) point sits directly on the power-information graph. *)

open Amb_units

type t = {
  name : string;
  bits : int;  (** nominal resolution *)
  enob : float;  (** effective number of bits *)
  sample_rate : Frequency.t;
  fom_j_per_step : float;  (** energy per conversion-step *)
  standby : Power.t;
}

let make ~name ~bits ~enob ~sample_rate_hz ~fom_pj_per_step ~standby_uw =
  if bits <= 0 || bits > 32 then invalid_arg "Adc.make: bits outside 1..32";
  if enob <= 0.0 || enob > Float.of_int bits then invalid_arg "Adc.make: enob outside (0,bits]";
  if fom_pj_per_step <= 0.0 then invalid_arg "Adc.make: non-positive FoM";
  {
    name;
    bits;
    enob;
    sample_rate = Frequency.hertz sample_rate_hz;
    fom_j_per_step = fom_pj_per_step *. 1e-12;
    standby = Power.microwatts standby_uw;
  }

let sensor_adc =
  make ~name:"10-bit 10 kS/s sensor ADC" ~bits:10 ~enob:9.2 ~sample_rate_hz:10e3
    ~fom_pj_per_step:1.0 ~standby_uw:0.1

let audio_adc =
  make ~name:"16-bit 48 kS/s audio sigma-delta" ~bits:16 ~enob:14.0 ~sample_rate_hz:48e3
    ~fom_pj_per_step:3.0 ~standby_uw:5.0

let video_adc =
  make ~name:"10-bit 27 MS/s video ADC" ~bits:10 ~enob:9.0 ~sample_rate_hz:27e6
    ~fom_pj_per_step:5.0 ~standby_uw:100.0

let baseband_adc =
  make ~name:"8-bit 20 MS/s baseband ADC" ~bits:8 ~enob:7.4 ~sample_rate_hz:20e6
    ~fom_pj_per_step:2.0 ~standby_uw:50.0

let catalogue = [ sensor_adc; audio_adc; video_adc; baseband_adc ]

(** [active_power adc] — conversion power at the full sample rate. *)
let active_power adc =
  Power.watts (adc.fom_j_per_step *. (2.0 ** adc.enob) *. Frequency.to_hertz adc.sample_rate)

(** [energy_per_sample adc]. *)
let energy_per_sample adc = Energy.joules (adc.fom_j_per_step *. (2.0 ** adc.enob))

(** [output_rate adc] — information rate produced, bits/s. *)
let output_rate adc =
  Data_rate.bits_per_second (Float.of_int adc.bits *. Frequency.to_hertz adc.sample_rate)

(** [snr_db adc] — signal-to-noise ratio implied by the ENOB:
    SNR = 6.02 * ENOB + 1.76 dB. *)
let snr_db adc = (6.02 *. adc.enob) +. 1.76

(** [enob_of_snr_db snr] — inverse of {!snr_db}. *)
let enob_of_snr_db snr = (snr -. 1.76) /. 6.02

(** [power_at_rate adc rate] — duty-cycled conversion power at a reduced
    sample rate (standby power charged during the idle fraction). *)
let power_at_rate adc rate =
  let full = Frequency.to_hertz adc.sample_rate in
  let r = Frequency.to_hertz rate in
  if r < 0.0 || r > full then invalid_arg "Adc.power_at_rate: rate outside [0, sample_rate]";
  let duty = if full <= 0.0 then 0.0 else r /. full in
  Power.add (Power.scale duty (active_power adc)) (Power.scale (1.0 -. duty) adc.standby)
