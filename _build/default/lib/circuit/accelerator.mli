(** Hardwired and reconfigurable accelerators — the architecture ladder
    (RISC < FPGA fabric < DSP-class < ASIC in ops/J) that closes the
    efficiency gaps technology scaling cannot (experiment E13). *)

open Amb_units
open Amb_tech

type kind =
  | Fixed_function  (** hardwired ASIC block *)
  | Programmable_dsp
  | Reconfigurable_fabric  (** FPGA/eFPGA implementation *)

val kind_name : kind -> string

type t = {
  name : string;
  kind : kind;
  node : Process_node.t;
  throughput : Frequency.t;  (** equivalent ops/s delivered *)
  power : Power.t;  (** power at full throughput *)
  standby : Power.t;
  area_mm2 : float;
  supported : string list;  (** function names this block can host *)
}

val make :
  name:string ->
  kind:kind ->
  node:Process_node.t ->
  throughput_mops:float ->
  power_mw:float ->
  standby_uw:float ->
  area_mm2:float ->
  supported:string list ->
  t
(** Raises [Invalid_argument] on non-positive throughput or power. *)

val video_pipeline_asic : t
val audio_codec_asic : t
val speech_frontend_asic : t
val des_crypto_engine : t
val fft_dsp : t
val efpga_fabric : t
val catalogue : t list

val ops_per_joule : t -> float
(** Delivered efficiency at full throughput. *)

val speedup_over : t -> Processor.t -> float
(** Efficiency advantage (ops/J ratio) over a programmable core. *)

val power_at : t -> Frequency.t -> Power.t
(** Duty-cycled power sustaining a rate; raises [Invalid_argument] beyond
    the block's throughput. *)

val supports : t -> string -> bool

val best_for : function_name:string -> rate:Frequency.t -> t option
(** Most efficient catalogue block hosting a function at a rate. *)
