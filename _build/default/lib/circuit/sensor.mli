(** Transducer models — the contextual-awareness inputs of the keynote. *)

open Amb_units

type modality = Temperature | Light | Acceleration | Acoustic | Passive_infrared | Image

val modality_name : modality -> string

type t = {
  name : string;
  modality : modality;
  sample_energy : Energy.t;  (** transducer + conditioning energy per sample *)
  settle_time : Time_span.t;  (** warm-up before a valid sample *)
  standby : Power.t;
  max_sample_rate : Frequency.t;
  bits_per_sample : float;
}

val make :
  name:string ->
  modality:modality ->
  sample_energy_uj:float ->
  settle_ms:float ->
  standby_nw:float ->
  max_sample_rate_hz:float ->
  bits_per_sample:float ->
  t

val temperature : t
val light : t
val accelerometer : t
val microphone : t
val pir : t
val camera_qcif : t
val catalogue : t list

val average_power : t -> Frequency.t -> Power.t
(** Standby floor plus per-sample energy at a rate; raises
    [Invalid_argument] for negative rates or rates above the sensor's
    maximum. *)

val information_rate : t -> Frequency.t -> Data_rate.t
(** Bits/s produced at a sample rate. *)
