(** Power gating and sleep-mode economics: cutting a block's supply
    eliminates (most of) its leakage but costs a fixed wake-up energy and
    latency; gating pays off only beyond the break-even idle time. *)

open Amb_units

type t = {
  name : string;
  leakage_active : Power.t;  (** leakage with supply on *)
  retention_factor : float;  (** residual leakage fraction when gated *)
  wakeup_energy : Energy.t;
  wakeup_latency : Time_span.t;
}

val make :
  name:string ->
  leakage_active:Power.t ->
  retention_factor:float ->
  wakeup_energy:Energy.t ->
  wakeup_latency:Time_span.t ->
  t
(** Raises [Invalid_argument] for retention outside [0,1]. *)

val leakage_gated : t -> Power.t
val leakage_saved : t -> Power.t

val break_even_time : t -> Time_span.t
(** Minimum idle duration for which gating saves energy;
    [Time_span.forever] when nothing is saved. *)

val idle_energy : t -> idle:Time_span.t -> gated:bool -> Energy.t

val should_gate : t -> idle:Time_span.t -> bool
(** The optimal decision for a known idle length. *)
