(** Transducer models — the contextual-awareness inputs of the keynote. *)

open Amb_units

type modality = Temperature | Light | Acceleration | Acoustic | Passive_infrared | Image

let modality_name = function
  | Temperature -> "temperature"
  | Light -> "light"
  | Acceleration -> "acceleration"
  | Acoustic -> "acoustic"
  | Passive_infrared -> "PIR"
  | Image -> "image"

type t = {
  name : string;
  modality : modality;
  sample_energy : Energy.t;  (** transducer + conditioning energy per sample *)
  settle_time : Time_span.t;  (** warm-up before a valid sample *)
  standby : Power.t;
  max_sample_rate : Frequency.t;
  bits_per_sample : float;
}

let make ~name ~modality ~sample_energy_uj ~settle_ms ~standby_nw ~max_sample_rate_hz
    ~bits_per_sample =
  {
    name;
    modality;
    sample_energy = Energy.microjoules sample_energy_uj;
    settle_time = Time_span.milliseconds settle_ms;
    standby = Power.nanowatts standby_nw;
    max_sample_rate = Frequency.hertz max_sample_rate_hz;
    bits_per_sample;
  }

let temperature =
  make ~name:"temperature sensor" ~modality:Temperature ~sample_energy_uj:0.5 ~settle_ms:1.0
    ~standby_nw:50.0 ~max_sample_rate_hz:10.0 ~bits_per_sample:12.0

let light =
  make ~name:"ambient-light sensor" ~modality:Light ~sample_energy_uj:0.2 ~settle_ms:0.5
    ~standby_nw:30.0 ~max_sample_rate_hz:100.0 ~bits_per_sample:10.0

let accelerometer =
  make ~name:"MEMS accelerometer" ~modality:Acceleration ~sample_energy_uj:1.0 ~settle_ms:2.0
    ~standby_nw:300.0 ~max_sample_rate_hz:1000.0 ~bits_per_sample:12.0

let microphone =
  make ~name:"microphone front-end" ~modality:Acoustic ~sample_energy_uj:0.05 ~settle_ms:5.0
    ~standby_nw:500.0 ~max_sample_rate_hz:48000.0 ~bits_per_sample:16.0

let pir =
  make ~name:"PIR presence detector" ~modality:Passive_infrared ~sample_energy_uj:0.1
    ~settle_ms:100.0 ~standby_nw:1000.0 ~max_sample_rate_hz:10.0 ~bits_per_sample:1.0

let camera_qcif =
  make ~name:"QCIF image sensor" ~modality:Image ~sample_energy_uj:300.0 ~settle_ms:30.0
    ~standby_nw:10000.0 ~max_sample_rate_hz:15.0 ~bits_per_sample:(176.0 *. 144.0 *. 8.0)

let catalogue = [ temperature; light; accelerometer; microphone; pir; camera_qcif ]

(** [average_power sensor rate] — standby floor plus per-sample energy at
    [rate] samples/s (clamped check against the sensor's maximum). *)
let average_power sensor rate =
  let r = Frequency.to_hertz rate in
  if r < 0.0 then invalid_arg "Sensor.average_power: negative rate";
  if r > Frequency.to_hertz sensor.max_sample_rate *. (1.0 +. 1e-9) then
    invalid_arg "Sensor.average_power: rate above sensor maximum";
  Power.add sensor.standby (Power.watts (r *. Energy.to_joules sensor.sample_energy))

(** [information_rate sensor rate] — bits/s produced at [rate] samples/s. *)
let information_rate sensor rate =
  Data_rate.bits_per_second (Frequency.to_hertz rate *. sensor.bits_per_sample)
