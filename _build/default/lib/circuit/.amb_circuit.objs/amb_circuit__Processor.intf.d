lib/circuit/processor.mli: Amb_tech Amb_units Energy Frequency Power Process_node Voltage
