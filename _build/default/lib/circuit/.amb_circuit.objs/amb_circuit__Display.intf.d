lib/circuit/display.mli: Amb_units Area Data_rate Energy Frequency Power
