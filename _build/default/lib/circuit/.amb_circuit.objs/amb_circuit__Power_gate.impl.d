lib/circuit/power_gate.ml: Amb_units Energy Power Time_span
