lib/circuit/sensor.ml: Amb_units Data_rate Energy Frequency Power Time_span
