lib/circuit/power_gate.mli: Amb_units Energy Power Time_span
