lib/circuit/radio_frontend.ml: Amb_units Data_rate Energy Float Power Time_span
