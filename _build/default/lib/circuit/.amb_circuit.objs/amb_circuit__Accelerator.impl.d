lib/circuit/accelerator.ml: Amb_tech Amb_units Frequency List Power Process_node Processor
