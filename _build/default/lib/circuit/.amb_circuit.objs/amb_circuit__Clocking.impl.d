lib/circuit/clocking.ml: Amb_units Energy Frequency Power Time_span
