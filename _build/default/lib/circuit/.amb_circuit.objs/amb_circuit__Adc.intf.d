lib/circuit/adc.mli: Amb_units Data_rate Energy Frequency Power
