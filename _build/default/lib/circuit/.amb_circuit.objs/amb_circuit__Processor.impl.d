lib/circuit/processor.ml: Amb_tech Amb_units Energy Float Frequency Power Process_node Voltage
