lib/circuit/clocking.mli: Amb_units Energy Frequency Power Time_span
