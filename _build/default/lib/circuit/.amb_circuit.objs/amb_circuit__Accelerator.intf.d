lib/circuit/accelerator.mli: Amb_tech Amb_units Frequency Power Process_node Processor
