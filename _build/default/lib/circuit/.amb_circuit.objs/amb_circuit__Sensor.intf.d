lib/circuit/sensor.mli: Amb_units Data_rate Energy Frequency Power Time_span
