lib/circuit/adc.ml: Amb_units Data_rate Energy Float Frequency Power
