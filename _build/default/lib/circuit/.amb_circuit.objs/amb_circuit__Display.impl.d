lib/circuit/display.ml: Amb_units Area Data_rate Energy Frequency Power
