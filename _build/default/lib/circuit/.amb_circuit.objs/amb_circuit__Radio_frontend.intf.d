lib/circuit/radio_frontend.mli: Amb_units Data_rate Energy Power Time_span
