(** Analog-to-digital converter model, governed by the figure of merit
    P = FoM * 2^ENOB * f_s.  The ADC is the canonical "interface
    electronics" of the keynote: its (rate, power) point sits directly on
    the power-information graph. *)

open Amb_units

type t = {
  name : string;
  bits : int;  (** nominal resolution *)
  enob : float;  (** effective number of bits *)
  sample_rate : Frequency.t;
  fom_j_per_step : float;  (** energy per conversion-step *)
  standby : Power.t;
}

val make :
  name:string ->
  bits:int ->
  enob:float ->
  sample_rate_hz:float ->
  fom_pj_per_step:float ->
  standby_uw:float ->
  t
(** Raises [Invalid_argument] on bits outside 1..32, enob outside
    (0,bits], or non-positive FoM. *)

val sensor_adc : t
val audio_adc : t
val video_adc : t
val baseband_adc : t
val catalogue : t list

val active_power : t -> Power.t
(** Conversion power at the full sample rate. *)

val energy_per_sample : t -> Energy.t

val output_rate : t -> Data_rate.t
(** Information rate produced, bits/s. *)

val snr_db : t -> float
(** SNR implied by the ENOB: 6.02 * ENOB + 1.76 dB. *)

val enob_of_snr_db : float -> float

val power_at_rate : t -> Frequency.t -> Power.t
(** Duty-cycled conversion power at a reduced sample rate; raises
    [Invalid_argument] outside [0, sample_rate]. *)
