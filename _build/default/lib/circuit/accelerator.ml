(** Hardwired and reconfigurable accelerators.

    The gap analysis (experiment E5) shows technology scaling alone cannot
    bring ambient functions into the lower device classes on schedule; the
    keynote's answer is architecture.  This module models the efficiency
    ladder the era measured: dedicated silicon is ~50-100x more
    operations-per-joule than a general-purpose core, DSPs sit ~5-10x
    above the core, and FPGA fabric lands an order of magnitude below
    dedicated silicon (cf. the DATE 2003 reconfigurable-computing
    sessions). *)

open Amb_units
open Amb_tech

type kind =
  | Fixed_function  (** hardwired ASIC block *)
  | Programmable_dsp
  | Reconfigurable_fabric  (** FPGA/eFPGA implementation *)

let kind_name = function
  | Fixed_function -> "fixed-function"
  | Programmable_dsp -> "DSP"
  | Reconfigurable_fabric -> "reconfigurable"

type t = {
  name : string;
  kind : kind;
  node : Process_node.t;
  throughput : Frequency.t;  (** equivalent ops/s delivered *)
  power : Power.t;  (** power at full throughput *)
  standby : Power.t;
  area_mm2 : float;
  supported : string list;  (** function names this block can host *)
}

let make ~name ~kind ~node ~throughput_mops ~power_mw ~standby_uw ~area_mm2 ~supported =
  if throughput_mops <= 0.0 then invalid_arg "Accelerator.make: non-positive throughput";
  if power_mw <= 0.0 then invalid_arg "Accelerator.make: non-positive power";
  {
    name;
    kind;
    node;
    throughput = Frequency.megahertz throughput_mops;
    power = Power.milliwatts power_mw;
    standby = Power.microwatts standby_uw;
    area_mm2;
    supported;
  }

(** [ops_per_joule a] — delivered efficiency at full throughput. *)
let ops_per_joule a = Frequency.to_hertz a.throughput /. Power.to_watts a.power

(** [speedup_over a processor] — efficiency advantage (ops/J ratio) over a
    programmable core. *)
let speedup_over a processor = ops_per_joule a /. Processor.ops_per_joule processor

(** [power_at a rate] — duty-cycled power sustaining [rate] ops/s (standby
    charged on the idle fraction); raises when [rate] exceeds the block's
    throughput. *)
let power_at a rate =
  let cap = Frequency.to_hertz a.throughput in
  let r = Frequency.to_hertz rate in
  if r < 0.0 || r > cap *. (1.0 +. 1e-9) then
    invalid_arg "Accelerator.power_at: rate outside capacity";
  let duty = r /. cap in
  Power.add (Power.scale duty a.power) (Power.scale (1.0 -. duty) a.standby)

(* The 130 nm-era ladder.  A dedicated video pipeline delivers a few Gops
   at tens of mW; mapped on FPGA fabric the same function costs ~10x; on a
   DSP it costs a few x less than on a RISC. *)

let video_pipeline_asic =
  make ~name:"video pipeline (ASIC)" ~kind:Fixed_function ~node:Process_node.n130
    ~throughput_mops:3000.0 ~power_mw:45.0 ~standby_uw:150.0 ~area_mm2:4.0
    ~supported:[ "video streaming"; "media server" ]

let audio_codec_asic =
  make ~name:"audio codec (ASIC)" ~kind:Fixed_function ~node:Process_node.n130
    ~throughput_mops:80.0 ~power_mw:1.2 ~standby_uw:10.0 ~area_mm2:0.5
    ~supported:[ "audio playback" ]

let speech_frontend_asic =
  make ~name:"speech front-end (ASIC)" ~kind:Fixed_function ~node:Process_node.n130
    ~throughput_mops:50.0 ~power_mw:0.8 ~standby_uw:5.0 ~area_mm2:0.4
    ~supported:[ "voice interface" ]

let des_crypto_engine =
  make ~name:"DES crypto engine" ~kind:Fixed_function ~node:Process_node.n180
    ~throughput_mops:400.0 ~power_mw:8.0 ~standby_uw:20.0 ~area_mm2:0.8
    ~supported:[ "link encryption" ]

let fft_dsp =
  make ~name:"FFT/filter DSP" ~kind:Programmable_dsp ~node:Process_node.n130
    ~throughput_mops:1000.0 ~power_mw:125.0 ~standby_uw:500.0 ~area_mm2:6.0
    ~supported:[ "voice interface"; "audio playback"; "software radio" ]

let efpga_fabric =
  make ~name:"embedded FPGA fabric" ~kind:Reconfigurable_fabric ~node:Process_node.n130
    ~throughput_mops:600.0 ~power_mw:180.0 ~standby_uw:2000.0 ~area_mm2:12.0
    ~supported:[ "video streaming"; "voice interface"; "software radio"; "link encryption" ]

let catalogue =
  [ video_pipeline_asic; audio_codec_asic; speech_frontend_asic; des_crypto_engine; fft_dsp;
    efpga_fabric ]

(** [supports a function_name]. *)
let supports a function_name = List.mem function_name a.supported

(** [best_for ~function_name ~rate] — the most efficient catalogue block
    that hosts [function_name] at [rate] ops/s; [None] when nothing
    fits. *)
let best_for ~function_name ~rate =
  let candidates =
    List.filter
      (fun a -> supports a function_name && Frequency.ge a.throughput rate)
      catalogue
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best a -> if ops_per_joule a > ops_per_joule best then a else best)
         first rest)
