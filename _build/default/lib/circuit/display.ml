(** Display / output interface electronics.

    Emissive panels cost power proportional to lit area and brightness;
    bistable (e-ink) panels cost energy per update only.  Displays anchor
    the top-right of the power-information graph: high information rate,
    high power. *)

open Amb_units

type technology =
  | Lcd_transmissive  (** backlight dominates *)
  | Oled
  | Electrophoretic  (** e-ink: zero static power *)
  | Led_indicator

type t = {
  name : string;
  technology : technology;
  area : Area.t;
  pixels : float;
  power_per_area_w_m2 : float;  (** at full brightness, emissive panels *)
  driver_power : Power.t;
  update_energy : Energy.t;  (** per full-frame update, bistable panels *)
  refresh_rate : Frequency.t;
  bits_per_pixel : float;
}

let make ~name ~technology ~area_cm2 ~pixels ~power_per_area_w_m2 ~driver_power_mw
    ~update_energy_mj ~refresh_hz ~bits_per_pixel =
  {
    name;
    technology;
    area = Area.square_centimetres area_cm2;
    pixels;
    power_per_area_w_m2;
    driver_power = Power.milliwatts driver_power_mw;
    update_energy = Energy.millijoules update_energy_mj;
    refresh_rate = Frequency.hertz refresh_hz;
    bits_per_pixel;
  }

let status_led =
  make ~name:"status LED" ~technology:Led_indicator ~area_cm2:0.01 ~pixels:1.0
    ~power_per_area_w_m2:0.0 ~driver_power_mw:2.0 ~update_energy_mj:0.0 ~refresh_hz:1.0
    ~bits_per_pixel:1.0

let eink_label =
  make ~name:"e-ink label 2\"" ~technology:Electrophoretic ~area_cm2:12.0 ~pixels:(200.0 *. 100.0)
    ~power_per_area_w_m2:0.0 ~driver_power_mw:0.0 ~update_energy_mj:20.0 ~refresh_hz:0.1
    ~bits_per_pixel:1.0

let pda_lcd =
  make ~name:"PDA LCD 3.5\"" ~technology:Lcd_transmissive ~area_cm2:38.0
    ~pixels:(320.0 *. 240.0) ~power_per_area_w_m2:150.0 ~driver_power_mw:30.0
    ~update_energy_mj:0.0 ~refresh_hz:60.0 ~bits_per_pixel:16.0

let tv_panel =
  make ~name:"flat-TV panel 32\"" ~technology:Lcd_transmissive ~area_cm2:2800.0
    ~pixels:(1280.0 *. 768.0) ~power_per_area_w_m2:350.0 ~driver_power_mw:2000.0
    ~update_energy_mj:0.0 ~refresh_hz:60.0 ~bits_per_pixel:24.0

let catalogue = [ status_led; eink_label; pda_lcd; tv_panel ]

(** [average_power display ~brightness ~updates_per_s] — emissive panels
    scale with brightness; bistable panels pay per update. *)
let average_power display ~brightness ~updates_per_s =
  if brightness < 0.0 || brightness > 1.0 then
    invalid_arg "Display.average_power: brightness outside [0,1]";
  if updates_per_s < 0.0 then invalid_arg "Display.average_power: negative update rate";
  match display.technology with
  | Electrophoretic ->
    Power.watts (updates_per_s *. Energy.to_joules display.update_energy)
  | Lcd_transmissive | Oled | Led_indicator ->
    let panel = Area.power_at_density (display.power_per_area_w_m2 *. brightness) display.area in
    Power.add panel display.driver_power

(** [information_rate display] — pixel-stream rate at the native refresh. *)
let information_rate display =
  Data_rate.bits_per_second
    (display.pixels *. display.bits_per_pixel *. Frequency.to_hertz display.refresh_rate)
