(** Display / output interface electronics.  Emissive panels cost power
    proportional to lit area and brightness; bistable (e-ink) panels cost
    energy per update only — which moves an ambient display across device
    classes (see the ambient_display example). *)

open Amb_units

type technology =
  | Lcd_transmissive  (** backlight dominates *)
  | Oled
  | Electrophoretic  (** e-ink: zero static power *)
  | Led_indicator

type t = {
  name : string;
  technology : technology;
  area : Area.t;
  pixels : float;
  power_per_area_w_m2 : float;  (** at full brightness, emissive panels *)
  driver_power : Power.t;
  update_energy : Energy.t;  (** per full-frame update, bistable panels *)
  refresh_rate : Frequency.t;
  bits_per_pixel : float;
}

val make :
  name:string ->
  technology:technology ->
  area_cm2:float ->
  pixels:float ->
  power_per_area_w_m2:float ->
  driver_power_mw:float ->
  update_energy_mj:float ->
  refresh_hz:float ->
  bits_per_pixel:float ->
  t

val status_led : t
val eink_label : t
val pda_lcd : t
val tv_panel : t
val catalogue : t list

val average_power : t -> brightness:float -> updates_per_s:float -> Power.t
(** Raises [Invalid_argument] for brightness outside [0,1] or negative
    update rates. *)

val information_rate : t -> Data_rate.t
(** Pixel-stream rate at the native refresh. *)
