(** Power gating and sleep-mode economics.

    Cutting a block's supply eliminates (most of) its leakage but costs a
    fixed wake-up energy and latency.  Gating pays off only for idle
    periods longer than the break-even time — a constraint that shapes
    every duty-cycling decision in the toolkit. *)

open Amb_units

type t = {
  name : string;
  leakage_active : Power.t;  (** leakage with supply on *)
  retention_factor : float;  (** residual leakage fraction when gated *)
  wakeup_energy : Energy.t;
  wakeup_latency : Time_span.t;
}

let make ~name ~leakage_active ~retention_factor ~wakeup_energy ~wakeup_latency =
  if retention_factor < 0.0 || retention_factor > 1.0 then
    invalid_arg "Power_gate.make: retention factor outside [0,1]";
  { name; leakage_active; retention_factor; wakeup_energy; wakeup_latency }

let leakage_gated g = Power.scale g.retention_factor g.leakage_active
let leakage_saved g = Power.sub g.leakage_active (leakage_gated g)

(** [break_even_time g] — minimum idle duration for which gating saves
    energy: E_wake / P_saved.  [Time_span.forever] when nothing is
    saved. *)
let break_even_time g =
  let saved = Power.to_watts (leakage_saved g) in
  if saved <= 0.0 then Time_span.forever
  else Time_span.seconds (Energy.to_joules g.wakeup_energy /. saved)

(** [idle_energy g ~idle ~gated] — energy burnt across an idle period of
    length [idle], with or without gating. *)
let idle_energy g ~idle ~gated =
  if gated then Energy.add (Energy.of_power_time (leakage_gated g) idle) g.wakeup_energy
  else Energy.of_power_time g.leakage_active idle

(** [should_gate g ~idle] — the optimal decision for a known idle length. *)
let should_gate g ~idle =
  Energy.lt (idle_energy g ~idle ~gated:true) (idle_energy g ~idle ~gated:false)
