(** Electric charge, stored in coulombs.  Converts between the mAh of
    battery datasheets and SI, and between charge and energy at a given
    terminal voltage. *)

include Quantity.S

val coulombs : float -> t
val milliamp_hours : float -> t
val amp_hours : float -> t
val to_coulombs : t -> float
val to_milliamp_hours : t -> float

val energy_at : t -> Voltage.t -> Energy.t
(** [energy_at q v] — energy released by charge [q] at constant [v]. *)

val current_draw : t -> Time_span.t -> float
(** [current_draw q t] — the constant current (amperes) emptying [q] in
    [t]; raises [Invalid_argument] for non-positive [t]. *)
