(** Information rate, stored in bits per second.

    The x-axis of the keynote's power-information graph: how much
    information a technology processes, communicates or presents per
    second. *)

include Quantity.Make (struct
  let symbol = "bit/s"
end)

let bits_per_second = of_float
let kilobits_per_second v = of_float (v *. 1e3)
let megabits_per_second v = of_float (v *. 1e6)
let gigabits_per_second v = of_float (v *. 1e9)
let to_bits_per_second = to_float
let to_kilobits_per_second r = to_float r /. 1e3

(** [transfer_time r bits] is the airtime/processing time of [bits] at rate
    [r]; raises [Invalid_argument] for non-positive [r]. *)
let transfer_time r bits =
  let bps = to_float r in
  if bps <= 0.0 then invalid_arg "Data_rate.transfer_time: non-positive rate"
  else Time_span.seconds (bits /. bps)

(** [bits_in r t] counts bits moved at rate [r] during [t]. *)
let bits_in r t = to_float r *. Time_span.to_seconds t

(** [energy_per_bit power r] — joules spent per bit when a block consuming
    [power] sustains rate [r]. *)
let energy_per_bit power r =
  let bps = to_float r in
  if bps <= 0.0 then invalid_arg "Data_rate.energy_per_bit: non-positive rate"
  else Energy.joules (Power.to_watts power /. bps)

(** [bits_per_joule power r] — the efficiency metric of the
    power-information graph (higher is better). *)
let bits_per_joule power r =
  let w = Power.to_watts power in
  if w <= 0.0 then Float.infinity else to_float r /. w
