(** Durations, stored in seconds.  Simulation timestamps are durations
    since the simulation epoch, so the same type serves for instants and
    intervals. *)

include Quantity.S

val seconds : float -> t
val milliseconds : float -> t
val microseconds : float -> t
val nanoseconds : float -> t
val minutes : float -> t
val hours : float -> t
val days : float -> t

val years : float -> t
(** Julian years (365.25 days), the convention of battery-lifetime
    figures. *)

val to_seconds : t -> float
val to_milliseconds : t -> float
val to_hours : t -> float
val to_days : t -> float
val to_years : t -> float

val forever : t
(** Positive infinity: the lifetime of an energy-autonomous node. *)

val is_forever : t -> bool

val pp_human : Format.formatter -> t -> unit
(** Human-friendly rendering: switches to minutes / hours / days / years
    for long durations. *)

val to_human_string : t -> string
