(** Surface area, stored in square metres.

    Used for harvester apertures (solar cells), display panels and silicon
    die area / power density. *)

include Quantity.Make (struct
  let symbol = "m^2"
end)

let square_metres = of_float
let square_centimetres v = of_float (v *. 1e-4)
let square_millimetres v = of_float (v *. 1e-6)
let to_square_metres = to_float
let to_square_centimetres a = to_float a *. 1e4
let to_square_millimetres a = to_float a *. 1e6

(** [power_density p a] in W/m^2; raises [Invalid_argument] for non-positive
    area. *)
let power_density p a =
  let m2 = to_float a in
  if m2 <= 0.0 then invalid_arg "Area.power_density: non-positive area"
  else Power.to_watts p /. m2

(** [power_at_density d a] — power collected/dissipated by area [a] at
    surface density [d] W/m^2. *)
let power_at_density d a = Power.watts (d *. to_float a)
