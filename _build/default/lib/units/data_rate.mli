(** Information rate, stored in bits per second — the x-axis of the
    keynote's power-information graph. *)

include Quantity.S

val bits_per_second : float -> t
val kilobits_per_second : float -> t
val megabits_per_second : float -> t
val gigabits_per_second : float -> t
val to_bits_per_second : t -> float
val to_kilobits_per_second : t -> float

val transfer_time : t -> float -> Time_span.t
(** [transfer_time r bits] — airtime/processing time of [bits] at rate
    [r]; raises [Invalid_argument] for non-positive [r]. *)

val bits_in : t -> Time_span.t -> float
(** [bits_in r t] — bits moved at rate [r] during [t]. *)

val energy_per_bit : Power.t -> t -> Energy.t
(** [energy_per_bit power r] — joules per bit for a block consuming
    [power] at rate [r]. *)

val bits_per_joule : Power.t -> t -> float
(** The power-information graph's efficiency metric; infinite at zero
    power. *)
