(** Energy, stored in joules.

    Energy is the central currency of the toolkit: batteries hold it,
    harvesters produce it, circuit activations consume it, and every
    design-challenge metric of the keynote reduces to joules per useful
    bit or operation. *)

include Quantity.Make (struct
  let symbol = "J"
end)

let joules = of_float
let kilojoules v = of_float (v *. 1e3)
let millijoules v = of_float (v *. 1e-3)
let microjoules v = of_float (v *. 1e-6)
let nanojoules v = of_float (v *. 1e-9)
let picojoules v = of_float (v *. 1e-12)
let femtojoules v = of_float (v *. 1e-15)
let watt_hours v = of_float (v *. 3600.0)
let milliwatt_hours v = of_float (v *. 3.6)
let to_joules = to_float
let to_watt_hours e = to_float e /. 3600.0
let to_millijoules e = to_float e *. 1e3

(** [of_power_time p t] is the energy drawn by a constant power [p] over
    duration [t]. *)
let of_power_time p t = of_float (Power.to_watts p *. Time_span.to_seconds t)

(** [average_power e t] spreads energy [e] over duration [t]. *)
let average_power e t =
  let s = Time_span.to_seconds t in
  if s <= 0.0 then invalid_arg "Energy.average_power: non-positive duration"
  else Power.watts (to_float e /. s)

(** [duration_at e p] is how long energy [e] sustains constant power [p];
    [Time_span.forever] when [p] is zero or negative. *)
let duration_at e p =
  let w = Power.to_watts p in
  if w <= 0.0 then Time_span.forever else Time_span.seconds (to_float e /. w)
