(** Frequency, stored in hertz.  Also used for operation rates (ops/s)
    and sample rates. *)

include Quantity.S

val hertz : float -> t
val kilohertz : float -> t
val megahertz : float -> t
val gigahertz : float -> t
val to_hertz : t -> float
val to_megahertz : t -> float

val period : t -> Time_span.t
(** [period f] is [1/f]; raises [Invalid_argument] for non-positive [f]. *)

val of_period : Time_span.t -> t
(** [of_period t] is [1/t]; raises [Invalid_argument] for non-positive [t]. *)

val cycles : t -> Time_span.t -> float
(** [cycles f t] — cycles of frequency [f] elapsed during [t]. *)
