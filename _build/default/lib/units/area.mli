(** Surface area, stored in square metres.  Used for harvester apertures,
    display panels and silicon die area / power density. *)

include Quantity.S

val square_metres : float -> t
val square_centimetres : float -> t
val square_millimetres : float -> t
val to_square_metres : t -> float
val to_square_centimetres : t -> float
val to_square_millimetres : t -> float

val power_density : Power.t -> t -> float
(** [power_density p a] in W/m^2; raises [Invalid_argument] for
    non-positive [a]. *)

val power_at_density : float -> t -> Power.t
(** [power_at_density d a] — power over area [a] at surface density [d]
    W/m^2. *)
