(** Engineering notation for SI quantities.

    All quantities in the toolkit are stored in base SI units (watts, joules,
    seconds, ...).  This module turns raw magnitudes into readable strings
    such as ["3.30 mW"] or ["14.1 GOPS"], picking the engineering prefix
    (powers of 1000) closest to the magnitude. *)

type prefix = { symbol : string; factor : float }

let prefixes =
  [ { symbol = "P"; factor = 1e15 }
  ; { symbol = "T"; factor = 1e12 }
  ; { symbol = "G"; factor = 1e9 }
  ; { symbol = "M"; factor = 1e6 }
  ; { symbol = "k"; factor = 1e3 }
  ; { symbol = ""; factor = 1e0 }
  ; { symbol = "m"; factor = 1e-3 }
  ; { symbol = "u"; factor = 1e-6 }
  ; { symbol = "n"; factor = 1e-9 }
  ; { symbol = "p"; factor = 1e-12 }
  ; { symbol = "f"; factor = 1e-15 }
  ]

(* The prefix whose factor is the largest one not exceeding [magnitude].
   Values outside the table range clamp to the extreme prefixes. *)
let prefix_for magnitude =
  let rec search = function
    | [] -> { symbol = "f"; factor = 1e-15 }
    | [ last ] -> last
    | p :: rest -> if magnitude >= p.factor *. 0.9999 then p else search rest
  in
  search prefixes

(** [format ~unit v] renders [v] (in base units) with an engineering prefix,
    e.g. [format ~unit:"W" 0.0033 = "3.30 mW"].  Zero, infinities and NaN are
    rendered specially. *)
let format ~unit v =
  if Float.is_nan v then "nan " ^ unit
  else if v = Float.infinity then "inf " ^ unit
  else if v = Float.neg_infinity then "-inf " ^ unit
  else if v = 0.0 then Printf.sprintf "0 %s" unit
  else
    let sign = if v < 0.0 then "-" else "" in
    let magnitude = Float.abs v in
    let p = prefix_for magnitude in
    let scaled = magnitude /. p.factor in
    let digits = if scaled >= 100.0 then 0 else if scaled >= 10.0 then 1 else 2 in
    Printf.sprintf "%s%.*f %s%s" sign digits scaled p.symbol unit

(** [parse_prefix s] is the multiplication factor of the engineering prefix
    [s], e.g. [parse_prefix "m" = Some 1e-3]. *)
let parse_prefix s = List.find_map (fun p -> if p.symbol = s then Some p.factor else None) prefixes

(** [round_to ~digits v] rounds [v] to [digits] significant decimal digits.
    Used by reports so that replicated table rows are stable across
    platforms. *)
let round_to ~digits v =
  if v = 0.0 || not (Float.is_finite v) then v
  else
    let exponent = Float.of_int (digits - 1) -. Float.round (Float.log10 (Float.abs v)) in
    let scale = 10.0 ** exponent in
    Float.round (v *. scale) /. scale

(** Relative comparison helper used throughout the test-suites:
    [approx_equal ~rel a b] holds when [a] and [b] differ by at most
    [rel] (default 1e-9) of their common magnitude. *)
let approx_equal ?(rel = 1e-9) a b =
  if a = b then true
  else
    let scale = Float.max (Float.abs a) (Float.abs b) in
    Float.abs (a -. b) <= rel *. scale
