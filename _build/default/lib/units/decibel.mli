(** Decibel arithmetic for link budgets — the single meeting point of the
    logarithmic (dB/dBm) and linear (watts) worlds. *)

val of_ratio : float -> float
(** [of_ratio r] is [10 log10 r]; raises [Invalid_argument] for
    non-positive [r]. *)

val to_ratio : float -> float
(** [to_ratio db] — linear power ratio [10^(db/10)]. *)

val dbm_of_power : Power.t -> float
(** Raises [Invalid_argument] for non-positive power. *)

val power_of_dbm : float -> Power.t

val thermal_noise_dbm_per_hz : float
(** Thermal noise density at 290 K: -174 dBm/Hz. *)

val noise_floor_dbm : bandwidth_hz:float -> noise_figure_db:float -> float
(** Receiver noise floor in dBm; raises [Invalid_argument] for
    non-positive bandwidth. *)
