lib/units/area.mli: Power Quantity
