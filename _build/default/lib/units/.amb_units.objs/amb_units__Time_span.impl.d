lib/units/time_span.ml: Float Format Quantity Si
