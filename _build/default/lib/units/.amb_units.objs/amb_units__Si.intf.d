lib/units/si.mli:
