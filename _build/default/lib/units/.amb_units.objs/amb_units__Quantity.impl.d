lib/units/quantity.ml: Float Format List Printf Si
