lib/units/time_span.mli: Format Quantity
