lib/units/data_rate.mli: Energy Power Quantity Time_span
