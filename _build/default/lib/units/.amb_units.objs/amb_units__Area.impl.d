lib/units/area.ml: Power Quantity
