lib/units/quantity.mli: Format
