lib/units/power.ml: List Quantity
