lib/units/charge.mli: Energy Quantity Time_span Voltage
