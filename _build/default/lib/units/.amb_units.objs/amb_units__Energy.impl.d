lib/units/energy.ml: Power Quantity Time_span
