lib/units/frequency.mli: Quantity Time_span
