lib/units/si.ml: Float List Printf
