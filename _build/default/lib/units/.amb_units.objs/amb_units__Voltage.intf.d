lib/units/voltage.mli: Quantity
