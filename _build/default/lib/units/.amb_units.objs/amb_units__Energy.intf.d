lib/units/energy.mli: Power Quantity Time_span
