lib/units/decibel.mli: Power
