lib/units/power.mli: Quantity
