lib/units/charge.ml: Energy Quantity Time_span Voltage
