lib/units/decibel.ml: Float Power
