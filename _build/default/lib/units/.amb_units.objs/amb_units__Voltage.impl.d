lib/units/voltage.ml: Quantity
