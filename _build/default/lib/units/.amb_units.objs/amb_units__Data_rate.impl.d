lib/units/data_rate.ml: Energy Float Power Quantity Time_span
