lib/units/frequency.ml: Quantity Time_span
