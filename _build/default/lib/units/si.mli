(** Engineering notation for SI quantities. *)

type prefix = { symbol : string; factor : float }

val prefixes : prefix list
(** Engineering prefixes, peta down to femto, in decreasing order. *)

val prefix_for : float -> prefix
(** [prefix_for magnitude] — the prefix whose factor is the largest not
    exceeding [magnitude]; clamps outside the table range. *)

val format : unit:string -> float -> string
(** [format ~unit v] renders [v] (base SI units) with an engineering
    prefix, e.g. [format ~unit:"W" 0.0033 = "3.30 mW"]. *)

val parse_prefix : string -> float option
(** [parse_prefix s] — multiplication factor of prefix [s]. *)

val round_to : digits:int -> float -> float
(** [round_to ~digits v] rounds to [digits] significant decimal digits. *)

val approx_equal : ?rel:float -> float -> float -> bool
(** [approx_equal ~rel a b] — relative comparison at tolerance [rel]
    (default [1e-9]) of the common magnitude. *)
