(** Electrical power, stored in watts.

    The three device classes of the ambient-intelligence keynote are named
    after the decades of this quantity: the microWatt-node, the
    milliWatt-node and the Watt-node. *)

include Quantity.Make (struct
  let symbol = "W"
end)

let watts = of_float
let kilowatts v = of_float (v *. 1e3)
let milliwatts v = of_float (v *. 1e-3)
let microwatts v = of_float (v *. 1e-6)
let nanowatts v = of_float (v *. 1e-9)
let to_watts = to_float
let to_milliwatts p = to_float p *. 1e3
let to_microwatts p = to_float p *. 1e6

(** Weighted average of [(power, weight)] pairs; weights need not be
    normalised.  Used for duty-cycle averaging.  Raises [Invalid_argument]
    on an empty list or all-zero weights. *)
let weighted_average contributions =
  match contributions with
  | [] -> invalid_arg "Power.weighted_average: empty"
  | _ ->
    let total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 contributions in
    if total_weight <= 0.0 then
      invalid_arg "Power.weighted_average: non-positive total weight"
    else
      let weighted = List.fold_left (fun acc (p, w) -> acc +. (to_float p *. w)) 0.0 contributions in
      of_float (weighted /. total_weight)
