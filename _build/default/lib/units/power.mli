(** Electrical power, stored in watts.

    The three device classes of the ambient-intelligence keynote are named
    after the decades of this quantity: the microWatt-node, the
    milliWatt-node and the Watt-node. *)

include Quantity.S

val watts : float -> t
val kilowatts : float -> t
val milliwatts : float -> t
val microwatts : float -> t
val nanowatts : float -> t
val to_watts : t -> float
val to_milliwatts : t -> float
val to_microwatts : t -> float

val weighted_average : (t * float) list -> t
(** Weighted average of [(power, weight)] pairs; weights need not be
    normalised.  Raises [Invalid_argument] on an empty list or
    non-positive total weight. *)
