(** Functor generating a typed scalar quantity.

    Each physical dimension used in the toolkit (power, energy, time, ...)
    instantiates {!Make} with its base SI unit symbol.  The generated module
    wraps a [float] in an abstract type so that, e.g., a power can never be
    added to an energy without going through an explicit conversion. *)

module type UNIT = sig
  val symbol : string
  (** Base SI unit symbol, e.g. ["W"]. *)
end

module type S = sig
  type t

  val symbol : string
  val of_float : float -> t
  (** [of_float v] wraps a magnitude expressed in the base SI unit. *)

  val to_float : t -> float
  val zero : t
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val scale : float -> t -> t
  (** [scale k q] is the quantity [k * q]. *)

  val div : t -> float -> t
  (** [div q k] is [q / k]; raises [Invalid_argument] when [k = 0]. *)

  val ratio : t -> t -> float
  (** [ratio a b] is the dimensionless quotient [a / b]. *)

  val min : t -> t -> t
  val max : t -> t -> t
  val sum : t list -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val approx_equal : ?rel:float -> t -> t -> bool

  val lt : t -> t -> bool
  (** Strict and non-strict comparisons are exported as named functions
      rather than operators so that [include]-ing a quantity module never
      shadows the polymorphic comparison operators. *)

  val le : t -> t -> bool
  val gt : t -> t -> bool
  val ge : t -> t -> bool
  val is_positive : t -> bool
  val is_finite : t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Make (U : UNIT) : S = struct
  type t = float

  let symbol = U.symbol
  let of_float v = v
  let to_float v = v
  let zero = 0.0
  let is_zero v = v = 0.0
  let add = ( +. )
  let sub = ( -. )
  let neg v = -.v
  let abs = Float.abs
  let scale k v = k *. v

  let div v k =
    if k = 0.0 then invalid_arg (Printf.sprintf "Quantity(%s).div: zero divisor" U.symbol)
    else v /. k

  let ratio a b =
    if b = 0.0 then invalid_arg (Printf.sprintf "Quantity(%s).ratio: zero denominator" U.symbol)
    else a /. b

  let min = Float.min
  let max = Float.max
  let sum = List.fold_left ( +. ) 0.0
  let compare = Float.compare
  let equal = Float.equal
  let approx_equal ?rel a b = Si.approx_equal ?rel a b
  let lt (a : float) b = a < b
  let le (a : float) b = a <= b
  let gt (a : float) b = a > b
  let ge (a : float) b = a >= b
  let is_positive (a : float) = a > 0.0
  let is_finite = Float.is_finite
  let to_string v = Si.format ~unit:U.symbol v
  let pp fmt v = Format.pp_print_string fmt (to_string v)
end
