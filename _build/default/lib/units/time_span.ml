(** Durations, stored in seconds.

    Simulation timestamps are durations since the simulation epoch, so the
    same type serves for both instants and intervals. *)

include Quantity.Make (struct
  let symbol = "s"
end)

let seconds = of_float
let milliseconds v = of_float (v *. 1e-3)
let microseconds v = of_float (v *. 1e-6)
let nanoseconds v = of_float (v *. 1e-9)
let minutes v = of_float (v *. 60.0)
let hours v = of_float (v *. 3600.0)
let days v = of_float (v *. 86400.0)

(* Julian year: the usual convention for battery-lifetime figures. *)
let years v = of_float (v *. 86400.0 *. 365.25)
let to_seconds = to_float
let to_milliseconds t = to_float t *. 1e3
let to_hours t = to_float t /. 3600.0
let to_days t = to_float t /. 86400.0
let to_years t = to_float t /. (86400.0 *. 365.25)
let forever = of_float Float.infinity
let is_forever t = to_float t = Float.infinity

(** Human-friendly rendering that switches to minutes / hours / days / years
    for long durations: lifetimes read as ["2.3 years"], not ["72.6 Ms"]. *)
let pp_human fmt t =
  let s = to_float t in
  if s = Float.infinity then Format.pp_print_string fmt "forever"
  else if s < 0.0 then Format.fprintf fmt "-%a" pp (abs t)
  else if s < 60.0 then Format.pp_print_string fmt (Si.format ~unit:"s" s)
  else if s < 3600.0 then Format.fprintf fmt "%.1f min" (s /. 60.0)
  else if s < 86400.0 then Format.fprintf fmt "%.1f h" (s /. 3600.0)
  else if s < 86400.0 *. 365.25 then Format.fprintf fmt "%.1f days" (s /. 86400.0)
  else Format.fprintf fmt "%.2f years" (s /. (86400.0 *. 365.25))

let to_human_string t = Format.asprintf "%a" pp_human t
