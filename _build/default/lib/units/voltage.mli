(** Electric potential, stored in volts. *)

include Quantity.S

val volts : float -> t
val millivolts : float -> t
val to_volts : t -> float
val to_millivolts : t -> float

val squared : t -> float
(** [squared v] is [v^2] in V^2 — the term of the CV^2 switching-energy
    law (plain float: V^2 is not a tracked dimension). *)
