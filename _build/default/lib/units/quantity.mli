(** Functor generating a typed scalar quantity (see the implementation
    for rationale).  Each physical dimension instantiates {!Make} with its
    base SI unit symbol; the wrapped [float] is abstract so distinct
    dimensions cannot be mixed without explicit conversion. *)

module type UNIT = sig
  val symbol : string
  (** Base SI unit symbol, e.g. ["W"]. *)
end

module type S = sig
  type t

  val symbol : string

  val of_float : float -> t
  (** [of_float v] wraps a magnitude expressed in the base SI unit. *)

  val to_float : t -> float
  val zero : t
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val abs : t -> t

  val scale : float -> t -> t
  (** [scale k q] is the quantity [k * q]. *)

  val div : t -> float -> t
  (** [div q k] is [q / k]; raises [Invalid_argument] when [k = 0]. *)

  val ratio : t -> t -> float
  (** [ratio a b] is the dimensionless quotient [a / b]. *)

  val min : t -> t -> t
  val max : t -> t -> t
  val sum : t list -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val approx_equal : ?rel:float -> t -> t -> bool

  val lt : t -> t -> bool
  (** Comparisons are named functions rather than operators so that
      [include]-ing a quantity module never shadows the polymorphic
      comparison operators. *)

  val le : t -> t -> bool
  val gt : t -> t -> bool
  val ge : t -> t -> bool
  val is_positive : t -> bool
  val is_finite : t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Make (U : UNIT) : S
