(** Electric charge, stored in coulombs.

    Battery capacities are conventionally given in mAh; this module converts
    between the datasheet unit and the SI quantity, and between charge and
    energy at a given terminal voltage. *)

include Quantity.Make (struct
  let symbol = "C"
end)

let coulombs = of_float
let milliamp_hours v = of_float (v *. 3.6)
let amp_hours v = of_float (v *. 3600.0)
let to_coulombs = to_float
let to_milliamp_hours q = to_float q /. 3.6

(** [energy_at q v] — energy released by charge [q] at constant voltage
    [v]. *)
let energy_at q v = Energy.joules (to_float q *. Voltage.to_volts v)

(** [current_draw q t] — the constant current (amperes) that empties charge
    [q] in duration [t]. *)
let current_draw q t =
  let s = Time_span.to_seconds t in
  if s <= 0.0 then invalid_arg "Charge.current_draw: non-positive duration"
  else to_float q /. s
