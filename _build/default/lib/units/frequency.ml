(** Frequency, stored in hertz.  Also used for operation rates (ops/s). *)

include Quantity.Make (struct
  let symbol = "Hz"
end)

let hertz = of_float
let kilohertz v = of_float (v *. 1e3)
let megahertz v = of_float (v *. 1e6)
let gigahertz v = of_float (v *. 1e9)
let to_hertz = to_float
let to_megahertz f = to_float f /. 1e6

(** [period f] is [1/f]; raises [Invalid_argument] for non-positive [f]. *)
let period f =
  let hz = to_float f in
  if hz <= 0.0 then invalid_arg "Frequency.period: non-positive frequency"
  else Time_span.seconds (1.0 /. hz)

(** [of_period t] is [1/t]; raises [Invalid_argument] for non-positive [t]. *)
let of_period t =
  let s = Time_span.to_seconds t in
  if s <= 0.0 then invalid_arg "Frequency.of_period: non-positive period"
  else of_float (1.0 /. s)

(** [cycles f t] counts cycles of frequency [f] elapsed during [t]. *)
let cycles f t = to_float f *. Time_span.to_seconds t
