(** Electric potential, stored in volts. *)

include Quantity.Make (struct
  let symbol = "V"
end)

let volts = of_float
let millivolts v = of_float (v *. 1e-3)
let to_volts = to_float
let to_millivolts v = to_float v *. 1e3

(** [squared v] is [v^2] in V^2 — the term of the CV^2 switching-energy
    law.  Kept as a plain float because V^2 is not itself a tracked
    dimension. *)
let squared v = to_float v *. to_float v
