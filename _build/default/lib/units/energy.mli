(** Energy, stored in joules — the central currency of the toolkit:
    batteries hold it, harvesters produce it, circuit activations consume
    it, and every design-challenge metric reduces to joules per useful bit
    or operation. *)

include Quantity.S

val joules : float -> t
val kilojoules : float -> t
val millijoules : float -> t
val microjoules : float -> t
val nanojoules : float -> t
val picojoules : float -> t
val femtojoules : float -> t
val watt_hours : float -> t
val milliwatt_hours : float -> t
val to_joules : t -> float
val to_watt_hours : t -> float
val to_millijoules : t -> float

val of_power_time : Power.t -> Time_span.t -> t
(** [of_power_time p t] — energy drawn by constant power [p] over [t]. *)

val average_power : t -> Time_span.t -> Power.t
(** [average_power e t] — [e] spread over duration [t]; raises
    [Invalid_argument] on non-positive [t]. *)

val duration_at : t -> Power.t -> Time_span.t
(** [duration_at e p] — how long [e] sustains constant power [p];
    [Time_span.forever] for non-positive [p]. *)
