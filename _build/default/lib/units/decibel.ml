(** Decibel arithmetic for link budgets.

    RF engineering works in dB (power ratios) and dBm (absolute power
    referenced to 1 mW); this module is the single place where the
    logarithmic and linear worlds meet. *)

(** [of_ratio r] is [10 log10 r]; raises [Invalid_argument] for non-positive
    [r]. *)
let of_ratio r =
  if r <= 0.0 then invalid_arg "Decibel.of_ratio: non-positive ratio" else 10.0 *. Float.log10 r

(** [to_ratio db] is the linear power ratio [10^(db/10)]. *)
let to_ratio db = 10.0 ** (db /. 10.0)

(** [dbm_of_power p]; raises [Invalid_argument] for non-positive power. *)
let dbm_of_power p =
  let w = Power.to_watts p in
  if w <= 0.0 then invalid_arg "Decibel.dbm_of_power: non-positive power"
  else 10.0 *. Float.log10 (w /. 1e-3)

(** [power_of_dbm dbm] is the absolute power of a dBm figure. *)
let power_of_dbm dbm = Power.watts (1e-3 *. to_ratio dbm)

(** Thermal noise power density at 290 K, the universal reference:
    -174 dBm/Hz. *)
let thermal_noise_dbm_per_hz = -173.977

(** [noise_floor_dbm ~bandwidth_hz ~noise_figure_db] — receiver noise floor
    in dBm. *)
let noise_floor_dbm ~bandwidth_hz ~noise_figure_db =
  if bandwidth_hz <= 0.0 then invalid_arg "Decibel.noise_floor_dbm: non-positive bandwidth"
  else thermal_noise_dbm_per_hz +. (10.0 *. Float.log10 bandwidth_hz) +. noise_figure_db
