(** Closed-form lifetime analyses — the analytic counterparts of the
    discrete-event simulation in [Amb_node.Lifetime_sim] (cross-checked by
    experiment E12). *)

open Amb_units

type verdict =
  | Autonomous  (** harvest (or mains) covers the load indefinitely *)
  | Finite of Time_span.t
  | Dead_on_arrival  (** no source can power the load at all *)

val verdict_to_string : verdict -> string

val evaluate : Supply.t -> Power.t -> verdict

val duty_cycle_for_autonomy : active:Power.t -> sleep:Power.t -> income:Power.t -> float option
(** Largest activity fraction [d] with [d*active + (1-d)*sleep <= income];
    [None] when sleep alone exceeds income, [Some 1.0] when full activity
    is covered. *)

val rate_for_autonomy : cycle_energy:Energy.t -> sleep:Power.t -> income:Power.t -> float option
(** Highest activation rate a harvester income sustains when each event
    costs [cycle_energy] on top of a [sleep] floor. *)

val average_load : active:Power.t -> sleep:Power.t -> duty:float -> Power.t
(** The duty-cycle power identity; raises [Invalid_argument] for duty
    outside [0,1]. *)
