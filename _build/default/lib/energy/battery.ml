(** Primary and secondary battery models.

    The autonomous microWatt-node of the keynote lives or dies by what a
    coin cell can deliver; the personal milliWatt-node by what a
    rechargeable pack can.  The model captures the three effects that
    matter at system level: rated capacity, Peukert-style derating at high
    draw, and self-discharge (which bounds lifetime even at zero load). *)

open Amb_units

type chemistry =
  | Lithium_coin  (** e.g. CR2032 primary cell *)
  | Alkaline  (** AA/AAA primary *)
  | Nickel_metal_hydride
  | Lithium_ion
  | Lithium_polymer

let chemistry_name = function
  | Lithium_coin -> "Li coin"
  | Alkaline -> "alkaline"
  | Nickel_metal_hydride -> "NiMH"
  | Lithium_ion -> "Li-ion"
  | Lithium_polymer -> "Li-polymer"

type t = {
  name : string;
  chemistry : chemistry;
  voltage : Voltage.t;  (** nominal terminal voltage *)
  capacity : Charge.t;  (** rated capacity at the nominal (C/20-ish) rate *)
  rated_current_a : float;  (** discharge current at which capacity is rated *)
  peukert_exponent : float;  (** 1.0 = ideal; >1 derates high-rate draw *)
  self_discharge_per_year : float;  (** fraction of capacity lost per year *)
  max_continuous_current_a : float;
  mass_g : float;
}

let make ~name ~chemistry ~voltage_v ~capacity_mah ~rated_current_ma ~peukert_exponent
    ~self_discharge_per_year ~max_continuous_current_ma ~mass_g =
  if capacity_mah <= 0.0 then invalid_arg "Battery.make: non-positive capacity";
  if peukert_exponent < 1.0 then invalid_arg "Battery.make: Peukert exponent < 1";
  if self_discharge_per_year < 0.0 || self_discharge_per_year >= 1.0 then
    invalid_arg "Battery.make: self-discharge outside [0,1)";
  {
    name;
    chemistry;
    voltage = Voltage.volts voltage_v;
    capacity = Charge.milliamp_hours capacity_mah;
    rated_current_a = rated_current_ma *. 1e-3;
    peukert_exponent;
    self_discharge_per_year;
    max_continuous_current_a = max_continuous_current_ma *. 1e-3;
    mass_g;
  }

let cr2032 =
  make ~name:"CR2032 coin cell" ~chemistry:Lithium_coin ~voltage_v:3.0 ~capacity_mah:220.0
    ~rated_current_ma:0.2 ~peukert_exponent:1.05 ~self_discharge_per_year:0.01
    ~max_continuous_current_ma:3.0 ~mass_g:3.0

let aa_alkaline =
  make ~name:"AA alkaline" ~chemistry:Alkaline ~voltage_v:1.5 ~capacity_mah:2500.0
    ~rated_current_ma:25.0 ~peukert_exponent:1.15 ~self_discharge_per_year:0.03
    ~max_continuous_current_ma:500.0 ~mass_g:23.0

let two_aa_alkaline =
  make ~name:"2x AA alkaline" ~chemistry:Alkaline ~voltage_v:3.0 ~capacity_mah:2500.0
    ~rated_current_ma:25.0 ~peukert_exponent:1.15 ~self_discharge_per_year:0.03
    ~max_continuous_current_ma:500.0 ~mass_g:46.0

let liion_phone =
  make ~name:"Li-ion 650 mAh (handheld)" ~chemistry:Lithium_ion ~voltage_v:3.7 ~capacity_mah:650.0
    ~rated_current_ma:130.0 ~peukert_exponent:1.03 ~self_discharge_per_year:0.05
    ~max_continuous_current_ma:1300.0 ~mass_g:18.0

let lipo_wearable =
  make ~name:"Li-polymer 120 mAh (wearable)" ~chemistry:Lithium_polymer ~voltage_v:3.7
    ~capacity_mah:120.0 ~rated_current_ma:24.0 ~peukert_exponent:1.03
    ~self_discharge_per_year:0.05 ~max_continuous_current_ma:240.0 ~mass_g:3.5

let catalogue = [ cr2032; aa_alkaline; two_aa_alkaline; liion_phone; lipo_wearable ]
let find name = List.find_opt (fun b -> b.name = name) catalogue

(** [energy battery] — rated energy content. *)
let energy battery = Charge.energy_at battery.capacity battery.voltage

(** [effective_capacity battery ~draw_a] — Peukert-derated capacity at a
    constant draw of [draw_a] amperes.  Draws at or below the rated current
    return the full rated capacity (we do not credit low-rate gains). *)
let effective_capacity battery ~draw_a =
  if draw_a <= 0.0 then battery.capacity
  else if draw_a <= battery.rated_current_a then battery.capacity
  else
    let derate = (battery.rated_current_a /. draw_a) ** (battery.peukert_exponent -. 1.0) in
    Charge.scale derate battery.capacity

(** [lifetime battery load] — how long [battery] sustains average power
    [load], combining Peukert derating and self-discharge:
    1/L = P/E_eff + k_self.  [Time_span.forever] at zero load with zero
    self-discharge. *)
let lifetime battery load =
  let w = Power.to_watts load in
  let draw_a = w /. Voltage.to_volts battery.voltage in
  let e = Charge.energy_at (effective_capacity battery ~draw_a) battery.voltage in
  let seconds_per_year = 86400.0 *. 365.25 in
  let load_rate = if w <= 0.0 then 0.0 else w /. Energy.to_joules e in
  let self_rate = battery.self_discharge_per_year /. seconds_per_year in
  let total_rate = load_rate +. self_rate in
  if total_rate <= 0.0 then Time_span.forever else Time_span.seconds (1.0 /. total_rate)

(** [supports battery load] — whether the continuous current implied by
    [load] stays within the cell's maximum continuous current (the reason a
    coin cell cannot feed a WLAN radio no matter the duty cycle of the
    average). *)
let supports battery ~peak =
  Power.to_watts peak /. Voltage.to_volts battery.voltage <= battery.max_continuous_current_a

(** [energy_density_j_per_g battery] — gravimetric energy density. *)
let energy_density_j_per_g battery =
  if battery.mass_g <= 0.0 then Float.infinity
  else Energy.to_joules (energy battery) /. battery.mass_g
