(** DC-DC converter efficiency curves.

    The constant regulator efficiency used by {!Supply} is a fair model at
    rated load, but real converters collapse at light load: the controller
    quiescent current and switching overhead are paid regardless of how
    little the load draws.  For a microWatt node that spends its life
    asleep, the regulator — not the silicon — can set the sleep-power
    floor (experiment E17). *)

open Amb_units

type t = {
  name : string;
  peak_efficiency : float;  (** at and above the knee load *)
  quiescent : Power.t;  (** controller bias, paid always *)
  switching_overhead : Power.t;  (** fixed gate-drive/switching loss while converting *)
  rated_load : Power.t;
}

let make ~name ~peak_efficiency ~quiescent_uw ~switching_overhead_uw ~rated_load_mw =
  if peak_efficiency <= 0.0 || peak_efficiency > 1.0 then
    invalid_arg "Regulator.make: peak efficiency outside (0,1]";
  if rated_load_mw <= 0.0 then invalid_arg "Regulator.make: non-positive rated load";
  {
    name;
    peak_efficiency;
    quiescent = Power.microwatts quiescent_uw;
    switching_overhead = Power.microwatts switching_overhead_uw;
    rated_load = Power.milliwatts rated_load_mw;
  }

(** A 2003-era buck converter for mW-class loads: 90% peak, ~50 uA
    controller. *)
let buck_mw_class =
  make ~name:"buck (mW class)" ~peak_efficiency:0.90 ~quiescent_uw:150.0
    ~switching_overhead_uw:200.0 ~rated_load_mw:500.0

(** A micropower boost converter designed for harvester nodes: lower peak
    efficiency but ~1 uA quiescent. *)
let micropower_boost =
  make ~name:"micropower boost" ~peak_efficiency:0.82 ~quiescent_uw:3.0
    ~switching_overhead_uw:2.0 ~rated_load_mw:10.0

(** A linear LDO: efficiency bounded by the voltage ratio (here fixed at
    60%), nearly no quiescent. *)
let ldo_linear =
  make ~name:"LDO (linear)" ~peak_efficiency:0.60 ~quiescent_uw:1.0 ~switching_overhead_uw:0.0
    ~rated_load_mw:100.0

let catalogue = [ buck_mw_class; micropower_boost; ldo_linear ]

(** [input_power reg ~load] — power drawn from the source to deliver
    [load]: conversion loss at the peak efficiency plus the fixed
    overheads.  Raises [Invalid_argument] beyond the rated load. *)
let input_power reg ~load =
  if Power.gt load reg.rated_load then invalid_arg "Regulator.input_power: load above rating";
  let conversion = Power.to_watts load /. reg.peak_efficiency in
  Power.watts
    (conversion +. Power.to_watts reg.quiescent +. Power.to_watts reg.switching_overhead)

(** [efficiency_at reg ~load] — delivered / drawn; tends to
    [peak_efficiency] at the rated load and to zero at no load. *)
let efficiency_at reg ~load =
  let input = Power.to_watts (input_power reg ~load) in
  if input <= 0.0 then 0.0 else Power.to_watts load /. input

(** [knee_load reg] — the load at which efficiency reaches half the peak:
    where the fixed overheads equal the scaled conversion draw. *)
let knee_load reg =
  let fixed = Power.to_watts reg.quiescent +. Power.to_watts reg.switching_overhead in
  Power.watts (fixed *. reg.peak_efficiency)

(** [effective_sleep_floor reg ~sleep] — what the source really sees when
    the silicon sleeps at [sleep]: the regulator's overheads usually
    dominate. *)
let effective_sleep_floor reg ~sleep = input_power reg ~load:sleep

(** [best_for ~load] — the catalogue regulator drawing the least input
    power at [load]. *)
let best_for ~load =
  let feasible = List.filter (fun r -> Power.le load r.rated_load) catalogue in
  match feasible with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best r ->
           if Power.lt (input_power r ~load) (input_power best ~load) then r else best)
         first rest)
