(** Diurnal harvesting profiles.

    Indoor light is not constant: an office is lit ~10 hours a day and
    nearly dark the rest.  An "autonomous" node must either ride through
    the dark stretch on stored energy or lower its duty cycle.  This
    module describes periodic day profiles as piecewise-constant scale
    factors on a harvesting environment and sizes the storage buffer the
    dark stretch requires (experiment E14). *)

open Amb_units

type segment = { duration : Time_span.t; scale : float }

type t = {
  name : string;
  segments : segment list;  (** one period, repeated forever *)
}

let make ~name segments =
  if segments = [] then invalid_arg "Day_profile.make: empty profile";
  List.iter
    (fun s ->
      if Time_span.to_seconds s.duration <= 0.0 then
        invalid_arg "Day_profile.make: non-positive segment";
      if s.scale < 0.0 then invalid_arg "Day_profile.make: negative scale")
    segments;
  { name; segments }

let period t = Time_span.sum (List.map (fun s -> s.duration) t.segments)

(** Office lighting: 10 h at full level, 14 h at 2% (emergency lights /
    residual daylight). *)
let office_lighting =
  make ~name:"office lighting"
    [ { duration = Time_span.hours 10.0; scale = 1.0 };
      { duration = Time_span.hours 14.0; scale = 0.02 };
    ]

(** Living-room lighting: two lit stretches (morning, evening). *)
let living_room_lighting =
  make ~name:"living-room lighting"
    [ { duration = Time_span.hours 2.0; scale = 1.0 };
      { duration = Time_span.hours 8.0; scale = 0.1 };
      { duration = Time_span.hours 5.0; scale = 1.0 };
      { duration = Time_span.hours 9.0; scale = 0.02 };
    ]

(** Outdoor sun: 12 h day / 12 h night. *)
let outdoor_diurnal =
  make ~name:"outdoor diurnal"
    [ { duration = Time_span.hours 12.0; scale = 1.0 };
      { duration = Time_span.hours 12.0; scale = 0.0 };
    ]

(** Constant (the default the rest of the toolkit assumes). *)
let constant = make ~name:"constant" [ { duration = Time_span.hours 24.0; scale = 1.0 } ]

(** [scale_at t time] — the multiplier in effect at [time] (periodic). *)
let scale_at t time =
  let p = Time_span.to_seconds (period t) in
  let s = Float.rem (Time_span.to_seconds time) p in
  let s = if s < 0.0 then s +. p else s in
  let rec walk segments offset =
    match segments with
    | [] -> 1.0
    | seg :: rest ->
      let next = offset +. Time_span.to_seconds seg.duration in
      if s < next then seg.scale else walk rest next
  in
  walk t.segments 0.0

(** [average_scale t] — duration-weighted mean multiplier: the factor by
    which the constant-income analyses overestimate real harvest. *)
let average_scale t =
  let total = Time_span.to_seconds (period t) in
  List.fold_left
    (fun acc s -> acc +. (s.scale *. Time_span.to_seconds s.duration /. total))
    0.0 t.segments

(** [average_income t peak_income] — long-run harvested power when the
    nominal environment yields [peak_income]. *)
let average_income t peak_income = Power.scale (average_scale t) peak_income

(** [darkest_stretch t ~threshold] — the longest contiguous run of
    segments whose scale stays below [threshold], accounting for
    wrap-around across the period boundary. *)
let darkest_stretch t ~threshold =
  let dark s = s.scale < threshold in
  let doubled = t.segments @ t.segments in
  let best, _current =
    List.fold_left
      (fun (best, current) s ->
        if dark s then
          let current = Time_span.add current s.duration in
          (Time_span.max best current, current)
        else (best, Time_span.zero))
      (Time_span.zero, Time_span.zero)
      doubled
  in
  (* A fully dark profile would double-count; cap at the period. *)
  Time_span.min best (period t)

(** [buffer_energy_required t ~load ~income] — energy a storage buffer
    must hold to carry [load] through the darkest stretch, crediting the
    residual income during it. *)
let buffer_energy_required t ~load ~income =
  let stretch = darkest_stretch t ~threshold:0.5 in
  (* Worst-case residual income during the stretch: the minimum scale. *)
  let min_scale =
    List.fold_left (fun acc s -> Float.min acc s.scale) Float.infinity t.segments
  in
  let residual = Power.scale min_scale income in
  let net = Power.max Power.zero (Power.sub load residual) in
  Energy.of_power_time net stretch

(** [buffer_capacitance_required t ~load ~income ~v_max ~v_min] — the
    supercapacitor value implementing {!buffer_energy_required} within the
    usable voltage window. *)
let buffer_capacitance_required t ~load ~income ~v_max ~v_min =
  let window = Voltage.squared v_max -. Voltage.squared v_min in
  if window <= 0.0 then invalid_arg "Day_profile.buffer_capacitance_required: empty window";
  2.0 *. Energy.to_joules (buffer_energy_required t ~load ~income) /. window

(** [sustainable t ~load ~income] — the long-run balance test: average
    harvested income covers the load. *)
let sustainable t ~load ~income = Power.ge (average_income t income) load

(** [income_multiplier t] — a [time_s -> multiplier] function for the
    discrete-event simulator. *)
let income_multiplier t time_s = scale_at t (Time_span.seconds time_s)
