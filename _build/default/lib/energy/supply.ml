(** Node power-supply chains.

    A supply combines at most one battery, at most one harvester (with its
    environment), an optional storage buffer and a regulator efficiency.
    The three keynote device classes map onto three archetypes:
    µW-node = harvester (+ coin cell), mW-node = rechargeable battery,
    W-node = mains. *)

open Amb_units

type t = {
  name : string;
  battery : Battery.t option;
  harvester : (Harvester.source * Harvester.environment) option;
  storage : Storage.t option;
  regulator_efficiency : float;  (** fraction of source energy reaching the load *)
  mains : bool;
}

let make ?battery ?harvester ?storage ?(regulator_efficiency = 0.85) ?(mains = false) ~name () =
  if regulator_efficiency <= 0.0 || regulator_efficiency > 1.0 then
    invalid_arg "Supply.make: regulator efficiency outside (0,1]";
  { name; battery; harvester; storage; regulator_efficiency; mains }

let battery_only ~name battery = make ~name ~battery ()

let harvester_with_buffer ~name source env storage =
  make ~name ~harvester:(source, env) ~storage ()

let harvester_and_battery ~name source env battery = make ~name ~harvester:(source, env) ~battery ()
let mains ~name = make ~name ~mains:true ~regulator_efficiency:0.8 ()

(** [harvest_income supply] — average harvested power delivered to the load
    (after the regulator, minus storage leakage). *)
let harvest_income supply =
  match supply.harvester with
  | None -> Power.zero
  | Some (source, env) ->
    let raw = Harvester.output source env in
    let after_reg = Power.scale supply.regulator_efficiency raw in
    let leak = match supply.storage with None -> Power.zero | Some s -> s.Storage.leakage in
    Power.max Power.zero (Power.sub after_reg leak)

(** [net_drain supply load] — average power drawn from the battery once the
    harvester's contribution is subtracted; zero when the harvester covers
    the load (energy-autonomous operation). *)
let net_drain supply load =
  (* [harvest_income] is measured on the load side (post-regulator), so it
     offsets the load directly; the remainder is drawn from the battery
     through the regulator. *)
  let uncovered_load = Power.max Power.zero (Power.sub load (harvest_income supply)) in
  Power.div uncovered_load supply.regulator_efficiency

(** [is_autonomous supply load] — true when the node never touches a
    battery: mains powered, or harvest income >= load. *)
let is_autonomous supply load =
  supply.mains || Power.ge (harvest_income supply) load

(** [lifetime supply load] — expected lifetime at average [load]:
    [Time_span.forever] for mains or fully harvester-covered operation;
    battery lifetime at the net drain otherwise; zero when there is no
    energy source at all. *)
let lifetime supply load =
  if is_autonomous supply load then Time_span.forever
  else
    match supply.battery with
    | None -> Time_span.zero
    | Some battery -> Battery.lifetime battery (net_drain supply load)

(** [power_budget_for_lifetime supply target] — the largest average load
    sustainable for [target] (binary search over the lifetime curve);
    [None] when no finite budget reaches the target (e.g. no battery and
    no harvester). *)
let power_budget_for_lifetime supply target =
  if supply.mains then Some (Power.watts Float.infinity)
  else
    let ok load = Time_span.ge (lifetime supply load) target in
    if not (ok Power.zero) then None
    else
      (* Exponential bracket then bisection on the monotone lifetime curve. *)
      let rec bracket hi n =
        if n = 0 then hi else if ok (Power.watts hi) then bracket (hi *. 2.0) (n - 1) else hi
      in
      let hi = bracket 1e-9 120 in
      let budget =
        if ok (Power.watts hi) then hi
        else
          let rec bisect lo hi n =
            if n = 0 then lo
            else
              let mid = 0.5 *. (lo +. hi) in
              if ok (Power.watts mid) then bisect mid hi (n - 1) else bisect lo mid (n - 1)
          in
          bisect 0.0 hi 60
      in
      (* Only the zero budget works when the supply has no energy source at
         all: report that as "no budget". *)
      if budget <= 1e-12 then None else Some (Power.watts budget)
