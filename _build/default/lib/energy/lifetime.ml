(** Closed-form lifetime analyses.

    These are the analytic counterparts of the discrete-event simulation in
    [Amb_node.Lifetime_sim]; experiment E12 cross-checks the two. *)

open Amb_units

type verdict =
  | Autonomous  (** harvest (or mains) covers the load indefinitely *)
  | Finite of Time_span.t
  | Dead_on_arrival  (** no source can power the load at all *)

let verdict_to_string = function
  | Autonomous -> "autonomous"
  | Finite t -> Time_span.to_human_string t
  | Dead_on_arrival -> "dead on arrival"

(** [evaluate supply load] — classify the (supply, load) pair. *)
let evaluate supply load =
  if Supply.is_autonomous supply load then Autonomous
  else
    let t = Supply.lifetime supply load in
    if Time_span.is_forever t then Autonomous
    else if Time_span.le t Time_span.zero then Dead_on_arrival
    else Finite t

(** [duty_cycle_for_autonomy ~active ~sleep ~income] — the largest activity
    fraction [d] such that [d * active + (1-d) * sleep <= income]; [None]
    when even pure sleep exceeds the income, [Some 1.0] when full activity
    is covered. *)
let duty_cycle_for_autonomy ~active ~sleep ~income =
  let a = Power.to_watts active
  and s = Power.to_watts sleep
  and i = Power.to_watts income in
  if s > i then None
  else if a <= i then Some 1.0
  else Some ((i -. s) /. (a -. s))

(** [rate_for_autonomy ~cycle_energy ~sleep ~income] — the highest
    activation rate (events/s) a harvester income sustains when each event
    costs [cycle_energy] on top of a [sleep] floor; [None] when sleep alone
    exceeds income. *)
let rate_for_autonomy ~cycle_energy ~sleep ~income =
  let s = Power.to_watts sleep and i = Power.to_watts income in
  let e = Energy.to_joules cycle_energy in
  if s > i then None
  else if e <= 0.0 then Some Float.infinity
  else Some ((i -. s) /. e)

(** [average_load ~active ~sleep ~duty] — the duty-cycle power identity
    used everywhere in the toolkit. *)
let average_load ~active ~sleep ~duty =
  if duty < 0.0 || duty > 1.0 then invalid_arg "Lifetime.average_load: duty outside [0,1]";
  Power.add (Power.scale duty active) (Power.scale (1.0 -. duty) sleep)
