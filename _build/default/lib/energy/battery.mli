(** Primary and secondary battery models: rated capacity, Peukert-style
    high-rate derating, self-discharge, and maximum continuous current.
    The autonomous microWatt-node lives or dies by what a coin cell can
    deliver; the personal milliWatt-node by what a rechargeable pack
    can. *)

open Amb_units

type chemistry =
  | Lithium_coin  (** e.g. CR2032 primary cell *)
  | Alkaline  (** AA/AAA primary *)
  | Nickel_metal_hydride
  | Lithium_ion
  | Lithium_polymer

val chemistry_name : chemistry -> string

type t = {
  name : string;
  chemistry : chemistry;
  voltage : Voltage.t;  (** nominal terminal voltage *)
  capacity : Charge.t;  (** rated capacity at the nominal rate *)
  rated_current_a : float;  (** discharge current at which capacity is rated *)
  peukert_exponent : float;  (** 1.0 = ideal; >1 derates high-rate draw *)
  self_discharge_per_year : float;  (** fraction of capacity lost per year *)
  max_continuous_current_a : float;
  mass_g : float;
}

val make :
  name:string ->
  chemistry:chemistry ->
  voltage_v:float ->
  capacity_mah:float ->
  rated_current_ma:float ->
  peukert_exponent:float ->
  self_discharge_per_year:float ->
  max_continuous_current_ma:float ->
  mass_g:float ->
  t
(** Raises [Invalid_argument] on non-positive capacity, Peukert exponent
    below 1, or self-discharge outside [0,1). *)

val cr2032 : t
val aa_alkaline : t
val two_aa_alkaline : t
val liion_phone : t
val lipo_wearable : t
val catalogue : t list
val find : string -> t option

val energy : t -> Energy.t
(** Rated energy content. *)

val effective_capacity : t -> draw_a:float -> Charge.t
(** Peukert-derated capacity at a constant draw; draws at or below the
    rated current return the full rated capacity. *)

val lifetime : t -> Power.t -> Time_span.t
(** How long the battery sustains an average load, combining Peukert
    derating and self-discharge: 1/L = P/E_eff + k_self.
    [Time_span.forever] at zero load with zero self-discharge. *)

val supports : t -> peak:Power.t -> bool
(** Whether the continuous current implied by [peak] stays within the
    cell's maximum — the reason a coin cell cannot feed a WLAN radio no
    matter how low the duty-cycled average is. *)

val energy_density_j_per_g : t -> float
