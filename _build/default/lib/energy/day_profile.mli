(** Diurnal harvesting profiles: periodic piecewise-constant scale factors
    on a harvesting environment, and the storage buffer needed to ride
    through the dark stretch (experiment E14). *)

open Amb_units

type segment = { duration : Time_span.t; scale : float }

type t = {
  name : string;
  segments : segment list;  (** one period, repeated forever *)
}

val make : name:string -> segment list -> t
(** Raises [Invalid_argument] on an empty profile, non-positive segment
    durations or negative scales. *)

val period : t -> Time_span.t

val office_lighting : t
(** 10 h lit, 14 h at 2%. *)

val living_room_lighting : t
(** Morning and evening lit stretches. *)

val outdoor_diurnal : t
(** 12 h day / 12 h night. *)

val constant : t

val scale_at : t -> Time_span.t -> float
(** The multiplier in effect at a given time (periodic). *)

val average_scale : t -> float
(** Duration-weighted mean multiplier. *)

val average_income : t -> Power.t -> Power.t
(** Long-run harvested power when the nominal environment yields the
    given peak income. *)

val darkest_stretch : t -> threshold:float -> Time_span.t
(** Longest contiguous run of sub-threshold segments, with wrap-around. *)

val buffer_energy_required : t -> load:Power.t -> income:Power.t -> Energy.t
(** Energy a buffer must hold to carry the load through the darkest
    stretch, crediting the residual income. *)

val buffer_capacitance_required :
  t -> load:Power.t -> income:Power.t -> v_max:Voltage.t -> v_min:Voltage.t -> float
(** Supercapacitor value (farads) implementing the buffer within a
    usable voltage window; raises [Invalid_argument] on an empty window. *)

val sustainable : t -> load:Power.t -> income:Power.t -> bool
(** Long-run balance test: average income covers the load. *)

val income_multiplier : t -> float -> float
(** [time_s -> multiplier] function for the discrete-event simulator. *)
