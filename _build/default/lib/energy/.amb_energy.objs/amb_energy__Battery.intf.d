lib/energy/battery.mli: Amb_units Charge Energy Power Time_span Voltage
