lib/energy/storage.mli: Amb_units Energy Power Time_span Voltage
