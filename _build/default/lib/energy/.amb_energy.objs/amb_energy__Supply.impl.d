lib/energy/supply.ml: Amb_units Battery Float Harvester Power Storage Time_span
