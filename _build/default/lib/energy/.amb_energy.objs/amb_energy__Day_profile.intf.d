lib/energy/day_profile.mli: Amb_units Energy Power Time_span Voltage
