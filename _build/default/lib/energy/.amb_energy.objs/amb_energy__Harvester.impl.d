lib/energy/harvester.ml: Amb_units Area Float Power Printf
