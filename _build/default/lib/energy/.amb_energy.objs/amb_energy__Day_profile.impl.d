lib/energy/day_profile.ml: Amb_units Energy Float List Power Time_span Voltage
