lib/energy/regulator.mli: Amb_units Power
