lib/energy/lifetime.mli: Amb_units Energy Power Supply Time_span
