lib/energy/supply.mli: Amb_units Battery Harvester Power Storage Time_span
