lib/energy/battery.ml: Amb_units Charge Energy Float List Power Time_span Voltage
