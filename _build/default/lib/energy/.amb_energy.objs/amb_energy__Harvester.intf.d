lib/energy/harvester.mli: Amb_units Area Power
