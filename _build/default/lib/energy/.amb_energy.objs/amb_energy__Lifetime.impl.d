lib/energy/lifetime.ml: Amb_units Energy Float Power Supply Time_span
