lib/energy/regulator.ml: Amb_units List Power
