lib/energy/storage.ml: Amb_units Energy Float Power Time_span Voltage
