(** Node power-supply chains: at most one battery, at most one harvester
    (with its environment), an optional storage buffer, a regulator
    efficiency, or mains.  The three keynote classes map onto three
    archetypes: uW = harvester (+ coin cell), mW = rechargeable battery,
    W = mains. *)

open Amb_units

type t = {
  name : string;
  battery : Battery.t option;
  harvester : (Harvester.source * Harvester.environment) option;
  storage : Storage.t option;
  regulator_efficiency : float;  (** fraction of source energy reaching the load *)
  mains : bool;
}

val make :
  ?battery:Battery.t ->
  ?harvester:Harvester.source * Harvester.environment ->
  ?storage:Storage.t ->
  ?regulator_efficiency:float ->
  ?mains:bool ->
  name:string ->
  unit ->
  t
(** Raises [Invalid_argument] on a regulator efficiency outside (0,1]. *)

val battery_only : name:string -> Battery.t -> t
val harvester_with_buffer : name:string -> Harvester.source -> Harvester.environment -> Storage.t -> t
val harvester_and_battery : name:string -> Harvester.source -> Harvester.environment -> Battery.t -> t
val mains : name:string -> t

val harvest_income : t -> Power.t
(** Average harvested power delivered to the load (post-regulator, minus
    storage leakage). *)

val net_drain : t -> Power.t -> Power.t
(** Average power drawn from the battery once the harvester's
    contribution is subtracted; zero under energy-autonomous operation. *)

val is_autonomous : t -> Power.t -> bool
(** Mains powered, or harvest income covers the load. *)

val lifetime : t -> Power.t -> Time_span.t
(** [Time_span.forever] when autonomous; battery lifetime at the net
    drain otherwise; zero with no energy source at all. *)

val power_budget_for_lifetime : t -> Time_span.t -> Power.t option
(** The largest average load sustainable for a target lifetime (bisection
    over the monotone lifetime curve); [None] when only the zero budget
    works; infinite for mains. *)
