(** DC-DC converter efficiency curves: peak efficiency at rated load,
    collapse at light load from quiescent + switching overheads.  For a
    node that spends its life asleep, the regulator can set the
    sleep-power floor (experiment E17). *)

open Amb_units

type t = {
  name : string;
  peak_efficiency : float;  (** at and above the knee load *)
  quiescent : Power.t;  (** controller bias, paid always *)
  switching_overhead : Power.t;  (** fixed loss while converting *)
  rated_load : Power.t;
}

val make :
  name:string ->
  peak_efficiency:float ->
  quiescent_uw:float ->
  switching_overhead_uw:float ->
  rated_load_mw:float ->
  t
(** Raises [Invalid_argument] on efficiency outside (0,1] or non-positive
    ratings. *)

val buck_mw_class : t
val micropower_boost : t
val ldo_linear : t
val catalogue : t list

val input_power : t -> load:Power.t -> Power.t
(** Power drawn from the source to deliver [load]; raises
    [Invalid_argument] beyond the rating. *)

val efficiency_at : t -> load:Power.t -> float
(** Delivered / drawn: peak at rated load, zero at no load. *)

val knee_load : t -> Power.t
(** The load at which efficiency reaches half the peak. *)

val effective_sleep_floor : t -> sleep:Power.t -> Power.t
(** What the source sees when the silicon sleeps at [sleep]. *)

val best_for : load:Power.t -> t option
(** The catalogue regulator drawing the least input power at [load]. *)
