(** Bounded event traces for debugging and assertions in tests.

    A trace records (time, label) pairs up to a capacity; older entries are
    dropped FIFO so long simulations cannot exhaust memory. *)

type entry = { time : float; label : string }

type t = {
  capacity : int;
  entries : entry Queue.t;
  mutable recorded : int;
  mutable dropped : int;
}

let create ?(capacity = 10_000) () =
  if capacity <= 0 then invalid_arg "Trace.create: non-positive capacity";
  { capacity; entries = Queue.create (); recorded = 0; dropped = 0 }

let record t ~time label =
  Queue.push { time; label } t.entries;
  t.recorded <- t.recorded + 1;
  if Queue.length t.entries > t.capacity then begin
    ignore (Queue.pop t.entries);
    t.dropped <- t.dropped + 1
  end

let length t = Queue.length t.entries
let recorded t = t.recorded
let dropped t = t.dropped
let to_list t = Queue.fold (fun acc e -> e :: acc) [] t.entries |> List.rev

(** [labels t] — the retained labels, oldest first. *)
let labels t = List.map (fun e -> e.label) (to_list t)

(** [count_matching t prefix] — retained entries whose label starts with
    [prefix]. *)
let count_matching t prefix =
  let matches e = String.length e.label >= String.length prefix
                  && String.sub e.label 0 (String.length prefix) = prefix in
  List.length (List.filter matches (to_list t))

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%12.6f  %s@." e.time e.label) (to_list t)
