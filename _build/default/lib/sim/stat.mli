(** Online statistics accumulators: Welford sample statistics, a
    time-weighted accumulator for state residencies (the basis of
    average-power measurement in the node simulator), and a fixed-bin
    histogram. *)

type welford

val welford : unit -> welford
val add : welford -> float -> unit
val count : welford -> int
val mean : welford -> float
val variance : welford -> float
(** Sample (n-1) variance; NaN below two samples. *)

val stddev : welford -> float
val std_error : welford -> float

type time_weighted

val time_weighted : unit -> time_weighted

val update : time_weighted -> time:float -> value:float -> unit
(** Record a change of value at a timestamp; raises [Invalid_argument]
    when time goes backwards. *)

val close : time_weighted -> time:float -> unit
(** Extend the last value up to [time] (used at the end of a
    simulation). *)

val integral : time_weighted -> float
val time_average : time_weighted -> float

type histogram

val histogram : lo:float -> hi:float -> bins:int -> histogram
(** Fixed bins over [lo, hi); out-of-range samples land in saturating
    edge bins.  Raises [Invalid_argument] on an empty range or
    non-positive bin count. *)

val observe : histogram -> float -> unit
val bin_count : histogram -> int -> int
val total_count : histogram -> int
val bin_fraction : histogram -> int -> float

val quantile_estimate : histogram -> float -> float
(** q-quantile from the binned counts (midpoint of the containing bin);
    raises [Invalid_argument] for q outside [0,1]. *)
