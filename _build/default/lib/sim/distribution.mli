(** Samplable probability distributions for workload generators. *)

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Gaussian of { mu : float; sigma : float }
  | Bimodal of { p_first : float; first : float; second : float }
      (** mixture of two point masses, e.g. short/long packets *)

val constant : float -> t
val uniform : float -> float -> t
val exponential : float -> t
val gaussian : float -> float -> t
val bimodal : p_first:float -> first:float -> second:float -> t

val sample : Rng.t -> t -> float
(** One draw. *)

val mean : t -> float
(** Analytic expectation. *)

val sample_positive : Rng.t -> t -> float
(** Redraw until the sample is non-negative (for durations). *)
