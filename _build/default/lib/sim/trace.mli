(** Bounded event traces for debugging and assertions in tests: (time,
    label) pairs up to a capacity, older entries dropped FIFO. *)

type entry = { time : float; label : string }
type t

val create : ?capacity:int -> unit -> t
(** Raises [Invalid_argument] on a non-positive capacity (default
    10,000). *)

val record : t -> time:float -> string -> unit
val length : t -> int

val recorded : t -> int
(** Total entries ever recorded (including dropped ones). *)

val dropped : t -> int
val to_list : t -> entry list

val labels : t -> string list
(** Retained labels, oldest first. *)

val count_matching : t -> string -> int
(** Retained entries whose label starts with a prefix. *)

val pp : Format.formatter -> t -> unit
