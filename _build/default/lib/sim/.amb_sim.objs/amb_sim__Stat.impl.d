lib/sim/stat.ml: Array Float Stdlib
