lib/sim/rng.mli:
