lib/sim/distribution.ml: Rng
