lib/sim/engine.ml: Amb_units Event_queue Float Time_span
