lib/sim/engine.mli: Amb_units Time_span
