lib/sim/stat.mli:
