lib/sim/distribution.mli: Rng
