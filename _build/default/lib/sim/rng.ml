(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic element of the toolkit draws from an explicit [Rng.t]
    with an explicit seed, so simulations, tests and benchmarks are exactly
    reproducible.  Splitmix64 is small, fast and passes BigCrush for the
    purposes at hand. *)

type t = { mutable state : int64; mutable cached_gaussian : float option }

let create seed = { state = Int64.of_int seed; cached_gaussian = None }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 core step. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [float t] — uniform in [0, 1). *)
let float t =
  let bits53 = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

(** [uniform t a b] — uniform in [a, b). *)
let uniform t a b =
  if b < a then invalid_arg "Rng.uniform: empty interval";
  a +. ((b -. a) *. float t)

(** [int t bound] — uniform in 0 .. bound-1. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Stdlib.abs (Int64.to_int (next_int64 t)) mod bound

(** [bool t]. *)
let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [bernoulli t p] — true with probability [p]. *)
let bernoulli t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Rng.bernoulli: p outside [0,1]";
  float t < p

(** [exponential t ~mean] — exponential variate. *)
let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: non-positive mean";
  let u = 1.0 -. float t in
  -.mean *. Float.log u

(** [gaussian t ~mu ~sigma] — normal variate (Box-Muller, cached pair). *)
let gaussian t ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Rng.gaussian: negative sigma";
  match t.cached_gaussian with
  | Some z ->
    t.cached_gaussian <- None;
    mu +. (sigma *. z)
  | None ->
    let rec draw () =
      let u = float t in
      if u <= 1e-300 then draw () else u
    in
    let u1 = draw () and u2 = float t in
    let r = Float.sqrt (-2.0 *. Float.log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.cached_gaussian <- Some (r *. Float.sin theta);
    mu +. (sigma *. (r *. Float.cos theta))

(** [split t] — an independent generator derived from [t]'s stream
    (consumes one draw from [t]). *)
let split t = { state = next_int64 t; cached_gaussian = None }

(** [shuffle t arr] — in-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [choose t lst] — uniform element of a non-empty list. *)
let choose t lst =
  match lst with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth lst (int t (List.length lst))
