(** Samplable probability distributions for workload generators. *)

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Gaussian of { mu : float; sigma : float }
  | Bimodal of { p_first : float; first : float; second : float }
      (** mixture of two point masses, e.g. short/long packets *)

let constant v = Constant v

let uniform lo hi =
  if hi < lo then invalid_arg "Distribution.uniform: empty interval";
  Uniform { lo; hi }

let exponential mean =
  if mean <= 0.0 then invalid_arg "Distribution.exponential: non-positive mean";
  Exponential { mean }

let gaussian mu sigma =
  if sigma < 0.0 then invalid_arg "Distribution.gaussian: negative sigma";
  Gaussian { mu; sigma }

let bimodal ~p_first ~first ~second =
  if p_first < 0.0 || p_first > 1.0 then invalid_arg "Distribution.bimodal: p outside [0,1]";
  Bimodal { p_first; first; second }

(** [sample rng d] — one draw. *)
let sample rng = function
  | Constant v -> v
  | Uniform { lo; hi } -> Rng.uniform rng lo hi
  | Exponential { mean } -> Rng.exponential rng ~mean
  | Gaussian { mu; sigma } -> Rng.gaussian rng ~mu ~sigma
  | Bimodal { p_first; first; second } -> if Rng.bernoulli rng p_first then first else second

(** [mean d] — analytic expectation. *)
let mean = function
  | Constant v -> v
  | Uniform { lo; hi } -> 0.5 *. (lo +. hi)
  | Exponential { mean } -> mean
  | Gaussian { mu; _ } -> mu
  | Bimodal { p_first; first; second } -> (p_first *. first) +. ((1.0 -. p_first) *. second)

(** [sample_positive rng d] — redraw until the sample is non-negative
    (used for durations that must not be negative). *)
let rec sample_positive rng d =
  let v = sample rng d in
  if v >= 0.0 then v else sample_positive rng d
