(** Deterministic pseudo-random numbers (splitmix64).  Every stochastic
    element of the toolkit draws from an explicit [Rng.t] with an explicit
    seed, so simulations, tests and benchmarks are exactly
    reproducible. *)

type t

val create : int -> t

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float -> float
(** Uniform in [a, b); raises [Invalid_argument] on an empty interval. *)

val int : t -> int -> int
(** Uniform in 0 .. bound-1; raises [Invalid_argument] on a non-positive
    bound. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** True with probability [p]; raises [Invalid_argument] outside [0,1]. *)

val exponential : t -> mean:float -> float
(** Raises [Invalid_argument] on a non-positive mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal variate; raises [Invalid_argument] on negative
    sigma. *)

val split : t -> t
(** An independent generator derived from this stream (consumes one
    draw). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list; raises [Invalid_argument] on an
    empty one. *)
