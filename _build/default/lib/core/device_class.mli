(** The three device classes of the keynote: "the autonomous or
    microWatt-node, the personal or milliWatt-node and the static or
    Watt-node."  Class boundaries are the power decades: below 1 mW
    average a device can live on scavenged energy; below ~1 W on a
    pocketable battery; above that it needs the mains. *)

open Amb_units

type t =
  | Microwatt  (** autonomous: scavenging / coin cell, years unattended *)
  | Milliwatt  (** personal: rechargeable battery, days between charges *)
  | Watt  (** static: mains powered, thermally limited *)

val all : t list
val name : t -> string
val short_name : t -> string

val band : t -> Power.t * Power.t
(** (inclusive lower, exclusive upper) average-power band. *)

val of_power : Power.t -> t
(** Classify an average power draw. *)

val average_budget : t -> Power.t
(** Design-target average power for the class. *)

val peak_budget : t -> Power.t
val energy_source : t -> string

val lifetime_target : t -> Time_span.t option
(** Unattended-operation requirement; [None] for the mains class. *)

val typical_functions : t -> string list

val design_challenge : t -> string
(** The IC challenge the keynote attaches to the class. *)

val compatible : t -> Power.t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
