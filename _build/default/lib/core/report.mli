(** Plain-text table rendering for the experiment harness: bench output,
    examples and EXPERIMENTS.md rows share one format. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make : ?notes:string list -> title:string -> header:string list -> string list list -> t
(** Raises [Invalid_argument] when a row's width differs from the
    header's. *)

val to_string : t -> string
(** Markdown-ish table with title and notes. *)

val print : t -> unit

val cell_float : ?digits:int -> float -> string
(** Stable significant-digit rendering (default 3 digits). *)

val cell_power : Amb_units.Power.t -> string
val cell_energy : Amb_units.Energy.t -> string
val cell_time : Amb_units.Time_span.t -> string
val cell_rate : Amb_units.Data_rate.t -> string
val cell_percent : float -> string
