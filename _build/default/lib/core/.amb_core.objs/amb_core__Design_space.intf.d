lib/core/design_space.mli: Amb_energy Amb_node Amb_units Device_class Harvester Node_model Power Report Storage Time_span
