lib/core/device_class.ml: Amb_units Float Format Power Stdlib Time_span
