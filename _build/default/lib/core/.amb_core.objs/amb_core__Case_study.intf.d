lib/core/case_study.mli: Device_class Report
