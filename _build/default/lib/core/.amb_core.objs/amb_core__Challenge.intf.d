lib/core/challenge.mli: Amb_circuit Amb_units Ami_function Device_class Power Processor Report Time_span
