lib/core/device_class.mli: Amb_units Format Power Time_span
