lib/core/mapping.ml: Amb_circuit Amb_energy Amb_node Amb_units Ami_function Battery Data_rate Device_class Energy Float Frequency List Power Processor Radio_frontend Report Stdlib String Supply
