lib/core/ami_function.mli: Amb_units Amb_workload Data_rate Device_class Energy Frequency Power Scenario
