lib/core/report.mli: Amb_units
