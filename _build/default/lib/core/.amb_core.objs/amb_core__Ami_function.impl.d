lib/core/ami_function.ml: Amb_units Amb_workload Data_rate Device_class Energy Frequency List Power Scenario
