lib/core/case_study.ml: Buffer Device_class Experiments List Printf Report String
