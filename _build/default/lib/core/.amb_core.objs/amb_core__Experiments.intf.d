lib/core/experiments.mli: Amb_tech Mapping Process_node Report Soc
