lib/core/mapping.mli: Amb_energy Amb_node Amb_units Ami_function Data_rate Device_class Energy Frequency Power Report
