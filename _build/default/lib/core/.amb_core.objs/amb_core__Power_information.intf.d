lib/core/power_information.mli: Adc Amb_circuit Amb_units Data_rate Device_class Display Power Processor Radio_frontend Report Sensor
