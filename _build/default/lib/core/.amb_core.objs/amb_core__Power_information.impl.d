lib/core/power_information.ml: Adc Amb_circuit Amb_units Data_rate Device_class Display Float Frequency List Power Printf Processor Radio_frontend Report Sensor
