lib/core/report.ml: Amb_units Array Buffer Float List Printf Stdlib String
