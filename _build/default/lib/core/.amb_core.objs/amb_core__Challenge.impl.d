lib/core/challenge.ml: Amb_circuit Amb_tech Amb_units Ami_function Device_class Float Frequency List Power Printf Process_node Processor Report Scaling Time_span
