(** The three case studies of the keynote, reconstructed: a narrative plus
    the experiments that quantify it (see DESIGN.md for the substitution
    rationale). *)

type t = {
  id : string;
  title : string;
  device_class : Device_class.t;
  challenge : string;
  experiment_ids : string list;
  narrative : string list;
}

val cs_a : t
(** Autonomous sensor node (microWatt). *)

val cs_b : t
(** Personal audio/voice device (milliWatt). *)

val cs_c : t
(** Static media node (Watt). *)

val all : t list

val find : string -> t option
(** Case-insensitive lookup by id (A, B, C). *)

val reports : t -> Report.t list
(** Build the case study's experiment reports. *)

val render : t -> string
(** Narrative followed by the reports. *)
