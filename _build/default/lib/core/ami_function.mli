(** Ambient-intelligence functions and their resource demands: the demand
    vectors the mapping layer places onto nodes, derived from the workload
    scenarios. *)

open Amb_units
open Amb_workload

type t = {
  name : string;
  scenario : Scenario.t;
  needs_sensing : bool;
  needs_display : bool;
  energy_per_op : Energy.t;  (** efficiency assumed when estimating power *)
  energy_per_bit : Energy.t;  (** communication efficiency assumed *)
}

val make :
  ?needs_sensing:bool ->
  ?needs_display:bool ->
  ?energy_per_op:Energy.t ->
  ?energy_per_bit:Energy.t ->
  scenario:Scenario.t ->
  unit ->
  t

val average_compute : t -> Frequency.t
(** Long-run ops/s demand. *)

val average_comm : t -> Data_rate.t

val estimated_power : t -> Power.t
(** First-order average power of hosting the function. *)

val minimum_class : t -> Device_class.t
(** The least power-hungry class whose average budget covers the
    function. *)

val environmental_sensing : t
val presence_detection : t
val voice_interface : t
val audio_playback : t
val video_streaming : t
val media_server : t
val catalogue : t list
