(** Design-challenge gap analysis: the efficiency each ambient function
    demands versus what contemporary silicon delivers, and the
    scaling-only closing years (experiment E5). *)

open Amb_units
open Amb_circuit

type gap = {
  subject : string;
  required_ops_per_joule : float;
  available_ops_per_joule : float;
  ratio : float;  (** required / available; > 1 means a gap *)
  closing_time : Time_span.t;  (** scaling-only time to close the gap *)
  closing_year : int;  (** base year + closing time; [max_int] if never *)
}

val doubling_period : unit -> Time_span.t
(** Efficiency-doubling period fitted on the process-node catalogue. *)

val compute_gap : subject:string -> required:float -> available:float -> base_year:int -> gap
(** Raises [Invalid_argument] on non-positive efficiencies. *)

val function_gap : Ami_function.t -> processor:Processor.t -> budget:Power.t -> base_year:int -> gap
(** The efficiency a function demands of a core limited to [budget],
    against what [processor] delivers. *)

val core_for : Device_class.t -> Processor.t
(** The era's best-fitting core per class. *)

val class_below : Device_class.t -> Device_class.t option

val compute_budget : Device_class.t -> Power.t
(** Compute's share (half) of the class's average budget. *)

val standard_gaps : ?base_year:int -> unit -> gap list
(** The keynote-flavoured gap set: each function hosted on its minimum
    class (closed today) and pushed one class down — the ambition whose
    gap is the paper's argument. *)

val to_report : gap list -> Report.t
