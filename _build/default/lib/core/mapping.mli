(** Mapping ambient functions onto a heterogeneous device network: the
    keynote's claim that ambient functions are realised by a *network* of
    uW/mW/W nodes, each hosting what fits its power budget
    (experiment E10). *)

open Amb_units

type host = {
  host_name : string;
  host_class : Device_class.t;
  compute_capacity : Frequency.t;  (** sustained ops/s available *)
  comm_capacity : Data_rate.t;  (** sustained bits/s available *)
  has_sensing : bool;
  has_display : bool;
  power_budget : Power.t;  (** average power available for functions *)
  energy_per_op : Energy.t;
  energy_per_bit : Energy.t;
  base_power : Power.t;  (** idle floor charged regardless of load *)
}

val host :
  ?has_sensing:bool ->
  ?has_display:bool ->
  ?base_power:Power.t ->
  name:string ->
  host_class:Device_class.t ->
  compute_capacity:Frequency.t ->
  comm_capacity:Data_rate.t ->
  power_budget:Power.t ->
  energy_per_op:Energy.t ->
  energy_per_bit:Energy.t ->
  unit ->
  host

val class_of_supply : Amb_energy.Supply.t -> Device_class.t
(** The keynote's own classification: the energy source determines the
    class (mains -> W, rechargeable -> mW, scavenger/primary cell ->
    uW). *)

val of_node_model : ?cores:int -> Amb_node.Node_model.t -> host
(** Derive a host from a composed node model; [cores] scales the compute
    capacity for multiprocessor SoCs. *)

type load = {
  mutable used_compute : float;  (** ops/s committed *)
  mutable used_comm : float;  (** bits/s committed *)
  mutable used_power : float;  (** watts committed, incl. base *)
  mutable hosted : Ami_function.t list;
}

type assignment = {
  hosts : (host * load) list;
  placed : (Ami_function.t * host) list;
  unplaced : Ami_function.t list;
}

val function_power_on : host -> Ami_function.t -> Power.t

val assign : hosts:host list -> functions:Ami_function.t list -> assignment
(** Greedy placement: functions in decreasing estimated-power order, each
    onto the feasible host of the smallest adequate class ("push
    functions to the leaves"), least added power as tie-break. *)

val feasible : assignment -> bool
(** Everything placed. *)

val host_power : assignment -> string -> Power.t
(** Raises [Not_found] on unknown hosts. *)

val total_power : assignment -> Power.t
val within_class_budgets : assignment -> bool

val to_report : assignment -> Report.t
(** The E10 table. *)
