(** Plain-text table rendering for the experiment harness.

    Every reconstructed table/figure prints through this module so that
    bench output, examples and EXPERIMENTS.md rows share one format. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ?(notes = []) ~title ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg (Printf.sprintf "Report.make(%s): row width mismatch" title))
    rows;
  { title; header; rows; notes }

let column_widths report =
  let cells = report.header :: report.rows in
  let widths = Array.make (List.length report.header) 0 in
  let consider row =
    List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row
  in
  List.iter consider cells;
  widths

let render_row widths row =
  let cells = List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row in
  "| " ^ String.concat " | " cells ^ " |"

let separator widths =
  let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
  "|-" ^ String.concat "-|-" dashes ^ "-|"

(** [to_string report] — markdown-ish table with title and notes. *)
let to_string report =
  let widths = column_widths report in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer ("## " ^ report.title ^ "\n");
  Buffer.add_string buffer (render_row widths report.header ^ "\n");
  Buffer.add_string buffer (separator widths ^ "\n");
  List.iter (fun row -> Buffer.add_string buffer (render_row widths row ^ "\n")) report.rows;
  List.iter (fun note -> Buffer.add_string buffer ("  note: " ^ note ^ "\n")) report.notes;
  Buffer.contents buffer

let print report = print_string (to_string report)

(* Cell formatting helpers: stable significant-digit rendering so the
   replicated rows do not wobble across runs/platforms. *)
let cell_float ?(digits = 3) v =
  if Float.is_nan v then "nan"
  else if Float.abs v >= 1e15 || v = Float.infinity then "inf"
  else Printf.sprintf "%.4g" (Amb_units.Si.round_to ~digits v)

let cell_power p = Amb_units.Power.to_string p
let cell_energy e = Amb_units.Energy.to_string e
let cell_time t = Amb_units.Time_span.to_human_string t
let cell_rate r = Amb_units.Data_rate.to_string r
let cell_percent f = Printf.sprintf "%.1f%%" (100.0 *. f)
