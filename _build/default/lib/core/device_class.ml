(** The three device classes of the ambient-intelligence keynote.

    "Based on the differences in power consumption, three types of devices
    are introduced: the autonomous or microWatt-node, the personal or
    milliWatt-node and the static or Watt-node."  The class boundaries are
    the power decades: below 1 mW average, a device can live on scavenged
    energy; below ~1 W it can live on a pocketable battery; above that it
    needs the mains. *)

open Amb_units

type t =
  | Microwatt  (** autonomous: scavenging / coin cell, years unattended *)
  | Milliwatt  (** personal: rechargeable battery, days between charges *)
  | Watt  (** static: mains powered, thermally limited *)

let all = [ Microwatt; Milliwatt; Watt ]

let name = function
  | Microwatt -> "microWatt-node (autonomous)"
  | Milliwatt -> "milliWatt-node (personal)"
  | Watt -> "Watt-node (static)"

let short_name = function Microwatt -> "uW" | Milliwatt -> "mW" | Watt -> "W"

(** [band cls] — (inclusive lower, exclusive upper) average-power band. *)
let band = function
  | Microwatt -> (Power.zero, Power.milliwatts 1.0)
  | Milliwatt -> (Power.milliwatts 1.0, Power.watts 1.0)
  | Watt -> (Power.watts 1.0, Power.watts Float.infinity)

(** [of_power p] — classify an average power draw. *)
let of_power p =
  if Power.lt p (Power.milliwatts 1.0) then Microwatt
  else if Power.lt p (Power.watts 1.0) then Milliwatt
  else Watt

(** [average_budget cls] — design-target average power for the class. *)
let average_budget = function
  | Microwatt -> Power.microwatts 100.0
  | Milliwatt -> Power.milliwatts 100.0
  | Watt -> Power.watts 10.0

(** [peak_budget cls] — tolerable burst power. *)
let peak_budget = function
  | Microwatt -> Power.milliwatts 10.0
  | Milliwatt -> Power.watts 1.0
  | Watt -> Power.watts 60.0

(** [energy_source cls] — the supply archetype of the class. *)
let energy_source = function
  | Microwatt -> "energy scavenging + coin cell"
  | Milliwatt -> "rechargeable battery"
  | Watt -> "mains"

(** [lifetime_target cls] — unattended-operation requirement; [None] for
    the mains-powered class. *)
let lifetime_target = function
  | Microwatt -> Some (Time_span.years 5.0)
  | Milliwatt -> Some (Time_span.days 7.0)
  | Watt -> None

(** [typical_functions cls]. *)
let typical_functions = function
  | Microwatt -> [ "context sensing"; "presence detection"; "identification (tags)" ]
  | Milliwatt -> [ "personal audio"; "voice interface"; "wearable computing" ]
  | Watt -> [ "video processing"; "media serving"; "ambient displays" ]

(** [design_challenge cls] — the IC challenge the keynote attaches to the
    class. *)
let design_challenge = function
  | Microwatt -> "uW standby power, radio start-up energy, energy scavenging"
  | Milliwatt -> "energy-efficient signal processing, voltage scaling"
  | Watt -> "power density, leakage, memory bandwidth"

(** [compatible cls p] — does average power [p] fit the class band? *)
let compatible cls p = of_power p = cls || Power.lt p (fst (band cls))

let compare a b =
  let rank = function Microwatt -> 0 | Milliwatt -> 1 | Watt -> 2 in
  Stdlib.compare (rank a) (rank b)

let pp fmt cls = Format.pp_print_string fmt (name cls)
