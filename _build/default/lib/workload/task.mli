(** Periodic real-time tasks: [ops] operations every [period], due by
    [deadline] (defaults to the period). *)

open Amb_units

type t = {
  name : string;
  ops : float;  (** operations per activation *)
  period : Time_span.t;
  deadline : Time_span.t;
}

val make : ?deadline:Time_span.t -> name:string -> ops:float -> period:Time_span.t -> unit -> t
(** Raises [Invalid_argument] on negative work or non-positive
    period/deadline. *)

val rate : t -> Frequency.t
(** Required throughput, ops/s. *)

val utilization : t -> capacity:Frequency.t -> float
(** Fraction of a capacity (ops/s) the task consumes. *)

val execution_time : t -> capacity:Frequency.t -> Time_span.t
val total_rate : t list -> Frequency.t
val total_utilization : t list -> capacity:Frequency.t -> float
