lib/workload/task.mli: Amb_units Frequency Time_span
