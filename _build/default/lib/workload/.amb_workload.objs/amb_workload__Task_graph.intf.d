lib/workload/task_graph.mli: Amb_circuit Amb_units Energy Frequency Processor Time_span Voltage
