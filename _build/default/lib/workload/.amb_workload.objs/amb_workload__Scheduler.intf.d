lib/workload/scheduler.mli: Amb_circuit Amb_units Energy Frequency Power Processor Task Time_span Voltage
