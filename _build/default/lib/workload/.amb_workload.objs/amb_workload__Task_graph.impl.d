lib/workload/task_graph.ml: Amb_circuit Amb_units Array Energy Float Frequency List Processor Queue Time_span
