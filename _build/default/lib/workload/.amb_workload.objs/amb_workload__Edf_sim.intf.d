lib/workload/edf_sim.mli: Amb_units Frequency Task Time_span
