lib/workload/scenario.ml: Amb_units Data_rate Float Frequency Time_span Traffic
