lib/workload/task.ml: Amb_units Frequency List Time_span
