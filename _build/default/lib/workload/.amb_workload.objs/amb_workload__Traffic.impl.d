lib/workload/traffic.ml: Amb_sim Amb_units Rng Time_span
