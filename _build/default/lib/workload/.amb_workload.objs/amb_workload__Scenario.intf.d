lib/workload/scenario.mli: Amb_units Data_rate Frequency Time_span Traffic
