lib/workload/scheduler.ml: Amb_circuit Amb_units Energy Float Frequency List Processor Task
