lib/workload/traffic.mli: Amb_sim Amb_units Rng Time_span
