lib/workload/edf_sim.ml: Amb_units Array Float Frequency List Task Time_span
