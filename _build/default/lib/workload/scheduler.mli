(** Schedulability tests (Liu-Layland RM bound, EDF utilisation test) and
    the static-slowdown DVFS policy they enable (experiment E6). *)

open Amb_units
open Amb_circuit

val rm_bound : int -> float
(** Liu-Layland bound n (2^{1/n} - 1); raises [Invalid_argument] on
    non-positive task counts. *)

val rm_schedulable : Task.t list -> capacity:Frequency.t -> bool
(** Sufficient (not necessary) rate-monotonic test. *)

val edf_schedulable : Task.t list -> capacity:Frequency.t -> bool
(** Exact for deadline-equals-period sets: U <= 1. *)

val static_slowdown : Task.t list -> capacity:Frequency.t -> float option
(** Minimal uniform speed fraction keeping the set EDF-schedulable (the
    utilisation); [None] when infeasible even at full speed. *)

val dvfs_operating_point : Processor.t -> Task.t list -> (Voltage.t * Power.t) option
(** The (voltage, power) running a task set under static-slowdown DVFS. *)

val energy_comparison : Processor.t -> Task.t list -> horizon:Time_span.t -> (Energy.t * Energy.t) option
(** Energy over a horizon under (race-to-idle, DVFS); [None] when
    infeasible. *)

val savings_fraction : race:Energy.t -> dvfs:Energy.t -> float
