(** Directed acyclic task graphs: the kernels of the mW node's
    signal-processing applications, with topological ordering,
    critical-path analysis and single-core makespan/energy evaluation. *)

open Amb_units
open Amb_circuit

type node = { name : string; ops : float }

type t = {
  nodes : node array;
  edges : (int * int) list;  (** (src, dst): src must finish before dst *)
  successors : int list array;
  predecessors : int list array;
}

val make : nodes:node array -> edges:(int * int) list -> t
(** Raises [Invalid_argument] on out-of-range edges, self-loops or
    negative work. *)

val node_count : t -> int
val total_ops : t -> float

val topological_order : t -> int list
(** Kahn's algorithm; raises [Invalid_argument] on a cycle. *)

val critical_path_ops : t -> float
(** The heaviest dependency chain — the latency lower bound regardless of
    parallel resources. *)

val parallelism : t -> float
(** Average width: total work / critical path. *)

val makespan : t -> capacity:Frequency.t -> Time_span.t
(** Single-core completion time. *)

val energy_on : t -> Processor.t -> Voltage.t -> Energy.t
(** Dynamic energy of one full execution at a supply. *)

val speech_frontend : t
(** Speech-recognition front-end (feature extraction + matching). *)

val audio_decoder : t
(** MP3-class audio decoder, per 26 ms frame. *)

val video_decoder : t
(** MPEG-2-class SD video decoder, per frame. *)
