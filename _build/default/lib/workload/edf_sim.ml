(** Event-driven preemptive uniprocessor scheduling.

    Simulates EDF or rate-monotonic scheduling of periodic task sets and
    counts deadline misses — the executable check of the Liu-Layland
    bound and the EDF utilisation test in {!Scheduler} (experiment E21).
    The simulation advances between decision points (job releases and
    completions); within a segment the highest-priority ready job runs. *)

open Amb_units

type policy =
  | Earliest_deadline_first
  | Rate_monotonic

let policy_name = function
  | Earliest_deadline_first -> "EDF"
  | Rate_monotonic -> "RM"

type job = {
  task_index : int;
  release : float;
  absolute_deadline : float;
  mutable remaining_ops : float;
  mutable miss_counted : bool;  (** deadline overrun already tallied *)
}

type outcome = {
  jobs_released : int;
  jobs_completed : int;
  deadline_misses : int;
  busy_fraction : float;  (** processor utilisation observed *)
  max_lateness : Time_span.t;  (** worst completion - deadline; zero if none late *)
}

(* Priority order: smaller is more urgent. *)
let priority policy tasks job =
  match policy with
  | Earliest_deadline_first -> job.absolute_deadline
  | Rate_monotonic -> Time_span.to_seconds (List.nth tasks job.task_index).Task.period

(** [run ~policy ~tasks ~capacity ~horizon] — simulate the task set on a
    processor of [capacity] ops/s until [horizon].  Jobs past their
    deadline keep running (they count as misses and contribute
    lateness). *)
let run ~policy ~tasks ~capacity ~horizon =
  let cap = Frequency.to_hertz capacity in
  if cap <= 0.0 then invalid_arg "Edf_sim.run: non-positive capacity";
  if tasks = [] then invalid_arg "Edf_sim.run: empty task set";
  let limit = Time_span.to_seconds horizon in
  if limit <= 0.0 then invalid_arg "Edf_sim.run: non-positive horizon";
  let task_array = Array.of_list tasks in
  let next_release = Array.make (Array.length task_array) 0.0 in
  let ready : job list ref = ref [] in
  let released = ref 0 in
  let completed = ref 0 in
  let misses = ref 0 in
  let busy = ref 0.0 in
  let max_lateness = ref 0.0 in
  let release_job now index =
    let task = task_array.(index) in
    let job =
      {
        task_index = index;
        release = now;
        absolute_deadline = now +. Time_span.to_seconds task.Task.deadline;
        remaining_ops = task.Task.ops;
        miss_counted = false;
      }
    in
    incr released;
    ready := job :: !ready;
    next_release.(index) <- now +. Time_span.to_seconds task.Task.period
  in
  let earliest_release () = Array.fold_left Float.min Float.infinity next_release in
  let pick_job () =
    match !ready with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun best j ->
             if priority policy tasks j < priority policy tasks best then j else best)
           first rest)
  in
  (* Residues below one nanosecond of work are completion: a smaller
     threshold stalls once [now + remaining/cap] rounds back to [now]. *)
  let epsilon_ops = cap *. 1e-9 in
  (* A miss is tallied the moment a deadline passes with work left, so
     starved jobs (which may never complete) still count. *)
  let tally_overruns now =
    List.iter
      (fun job ->
        if (not job.miss_counted) && job.absolute_deadline < now -. 1e-12 then begin
          job.miss_counted <- true;
          incr misses
        end)
      !ready
  in
  let rec loop now =
    if now >= limit then ()
    else begin
      tally_overruns now;
      (* Release everything due now. *)
      Array.iteri (fun i t -> if t <= now +. 1e-12 then release_job now i) next_release;
      match pick_job () with
      | None ->
        (* Idle until the next release. *)
        loop (Float.min limit (earliest_release ()))
      | Some job ->
        let finish_at = now +. (job.remaining_ops /. cap) in
        let next_event = Float.min finish_at (Float.min limit (earliest_release ())) in
        let ran = (next_event -. now) *. cap in
        busy := !busy +. (next_event -. now);
        job.remaining_ops <- job.remaining_ops -. ran;
        if job.remaining_ops <= epsilon_ops then begin
          incr completed;
          ready := List.filter (fun j -> j != job) !ready;
          let lateness = next_event -. job.absolute_deadline in
          if lateness > 1e-9 then begin
            if not job.miss_counted then incr misses;
            job.miss_counted <- true;
            if lateness > !max_lateness then max_lateness := lateness
          end
        end;
        loop next_event
    end
  in
  loop 0.0;
  tally_overruns limit;
  {
    jobs_released = !released;
    jobs_completed = !completed;
    deadline_misses = !misses;
    busy_fraction = !busy /. limit;
    max_lateness = Time_span.seconds !max_lateness;
  }

(** [schedulable_in_simulation ~policy ~tasks ~capacity ~horizon] — zero
    misses over the horizon (use a horizon of several hyperperiods). *)
let schedulable_in_simulation ~policy ~tasks ~capacity ~horizon =
  (run ~policy ~tasks ~capacity ~horizon).deadline_misses = 0
