(** Directed acyclic task graphs.

    Signal-processing applications (the mW node's bread and butter)
    decompose into DAGs of kernels.  The graph supports topological
    ordering, critical-path analysis and single-core makespan/energy
    evaluation on a processor model. *)

open Amb_units
open Amb_circuit

type node = { name : string; ops : float }

type t = {
  nodes : node array;
  edges : (int * int) list;  (** (src, dst): src must finish before dst *)
  successors : int list array;
  predecessors : int list array;
}

let make ~nodes ~edges =
  let n = Array.length nodes in
  let successors = Array.make n [] and predecessors = Array.make n [] in
  let add (src, dst) =
    if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Task_graph.make: edge out of range";
    if src = dst then invalid_arg "Task_graph.make: self-loop";
    successors.(src) <- dst :: successors.(src);
    predecessors.(dst) <- src :: predecessors.(dst)
  in
  List.iter add edges;
  Array.iter (fun nd -> if nd.ops < 0.0 then invalid_arg "Task_graph.make: negative work") nodes;
  { nodes; edges; successors; predecessors }

let node_count g = Array.length g.nodes
let total_ops g = Array.fold_left (fun acc nd -> acc +. nd.ops) 0.0 g.nodes

(** [topological_order g] — Kahn's algorithm; raises [Invalid_argument] on
    a cycle. *)
let topological_order g =
  let n = node_count g in
  let in_degree = Array.map List.length g.predecessors in
  let ready = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.push i ready) in_degree;
  let rec loop acc count =
    if Queue.is_empty ready then
      if count = n then List.rev acc else invalid_arg "Task_graph.topological_order: cyclic graph"
    else
      let u = Queue.pop ready in
      let release v =
        in_degree.(v) <- in_degree.(v) - 1;
        if in_degree.(v) = 0 then Queue.push v ready
      in
      List.iter release g.successors.(u);
      loop (u :: acc) (count + 1)
  in
  loop [] 0

(** [critical_path_ops g] — the heaviest dependency chain, in operations:
    the lower bound on latency regardless of parallel resources. *)
let critical_path_ops g =
  let order = topological_order g in
  let finish = Array.make (node_count g) 0.0 in
  let relax u =
    let start =
      List.fold_left (fun acc p -> Float.max acc finish.(p)) 0.0 g.predecessors.(u)
    in
    finish.(u) <- start +. g.nodes.(u).ops
  in
  List.iter relax order;
  Array.fold_left Float.max 0.0 finish

(** [parallelism g] — average width: total work / critical path. *)
let parallelism g =
  let cp = critical_path_ops g in
  if cp <= 0.0 then 1.0 else total_ops g /. cp

(** [makespan g ~capacity] — single-core completion time at [capacity]
    ops/s (sequential execution of the whole DAG). *)
let makespan g ~capacity =
  let c = Frequency.to_hertz capacity in
  if c <= 0.0 then invalid_arg "Task_graph.makespan: non-positive capacity";
  Time_span.seconds (total_ops g /. c)

(** [energy_on g processor v] — dynamic energy of one full execution on
    [processor] at supply [v]. *)
let energy_on g processor v =
  Energy.scale (total_ops g) (Processor.energy_per_op_at processor v)

(* Reference media pipelines used by the case studies. *)

(** Speech recognition front-end (feature extraction + matching),
    ~10 MOPS at 100 activations/s. *)
let speech_frontend =
  make
    ~nodes:
      [| { name = "pre-emphasis"; ops = 5_000.0 };
         { name = "FFT-256"; ops = 25_000.0 };
         { name = "mel filterbank"; ops = 10_000.0 };
         { name = "cepstrum"; ops = 15_000.0 };
         { name = "HMM match"; ops = 45_000.0 };
      |]
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4) ]

(** MP3-class audio decoder, per 26 ms frame (~0.5 MOPS/frame). *)
let audio_decoder =
  make
    ~nodes:
      [| { name = "huffman"; ops = 80_000.0 };
         { name = "dequant"; ops = 60_000.0 };
         { name = "stereo"; ops = 40_000.0 };
         { name = "imdct-left"; ops = 150_000.0 };
         { name = "imdct-right"; ops = 150_000.0 };
         { name = "synthesis"; ops = 120_000.0 };
      |]
    ~edges:[ (0, 1); (1, 2); (2, 3); (2, 4); (3, 5); (4, 5) ]

(** MPEG-2-class standard-definition video decoder, per frame
    (~100 MOPS/frame at 25 fps gives a few GOPS). *)
let video_decoder =
  make
    ~nodes:
      [| { name = "vld"; ops = 12_000_000.0 };
         { name = "dequant"; ops = 8_000_000.0 };
         { name = "idct"; ops = 35_000_000.0 };
         { name = "motion-comp"; ops = 30_000_000.0 };
         { name = "deblock"; ops = 10_000_000.0 };
         { name = "color-convert"; ops = 15_000_000.0 };
      |]
    ~edges:[ (0, 1); (1, 2); (0, 3); (2, 4); (3, 4); (4, 5) ]
