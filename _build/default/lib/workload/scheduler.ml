(** Schedulability tests and DVFS slack exploitation.

    Classic single-core results: the Liu-Layland rate-monotonic bound and
    the EDF utilisation test, plus the static-slowdown DVFS policy they
    enable — run every task slower by the utilisation factor and finish
    exactly on time, at quadratically lower voltage-energy. *)

open Amb_units
open Amb_circuit

(** [rm_bound n] — Liu-Layland utilisation bound for [n] periodic tasks
    under rate-monotonic scheduling: n (2^{1/n} - 1), tending to ln 2. *)
let rm_bound n =
  if n <= 0 then invalid_arg "Scheduler.rm_bound: non-positive task count"
  else
    let nf = Float.of_int n in
    nf *. ((2.0 ** (1.0 /. nf)) -. 1.0)

(** [rm_schedulable tasks ~capacity] — sufficient (not necessary) RM
    test. *)
let rm_schedulable tasks ~capacity =
  match tasks with
  | [] -> true
  | _ -> Task.total_utilization tasks ~capacity <= rm_bound (List.length tasks)

(** [edf_schedulable tasks ~capacity] — exact test for
    deadline-equals-period task sets: U <= 1. *)
let edf_schedulable tasks ~capacity = Task.total_utilization tasks ~capacity <= 1.0

(** [static_slowdown tasks ~capacity] — the minimal uniform speed fraction
    keeping the set EDF-schedulable: the utilisation itself ([None] when
    U > 1, i.e. infeasible even at full speed). *)
let static_slowdown tasks ~capacity =
  let u = Task.total_utilization tasks ~capacity in
  if u > 1.0 then None else Some (Float.max u 1e-9)

(** [dvfs_operating_point processor tasks] — the (voltage, power) running a
    task set under the static-slowdown DVFS policy on [processor]; [None]
    when infeasible. *)
let dvfs_operating_point processor tasks =
  let capacity = Processor.max_throughput processor in
  match static_slowdown tasks ~capacity with
  | None -> None
  | Some slowdown ->
    let rate = Frequency.scale slowdown capacity in
    (match Processor.dvfs_power processor rate with
    | None -> None
    | Some power ->
      let voltage =
        match Processor.min_voltage_for processor rate with
        | Some v -> v
        | None -> Processor.vdd_nominal processor
      in
      Some (voltage, power))

(** [energy_comparison processor tasks ~horizon] — energy over [horizon]
    under race-to-idle versus DVFS; [None] when the set is infeasible.
    The ratio is experiment E6's headline number. *)
let energy_comparison processor tasks ~horizon =
  let capacity = Processor.max_throughput processor in
  let rate = Task.total_rate tasks in
  match (Processor.race_to_idle_power processor rate, Processor.dvfs_power processor rate) with
  | Some p_race, Some p_dvfs when Task.total_utilization tasks ~capacity <= 1.0 ->
    Some
      ( Energy.of_power_time p_race horizon,
        Energy.of_power_time p_dvfs horizon )
  | _ -> None

(** [savings_fraction ~race ~dvfs] — relative energy saved by DVFS. *)
let savings_fraction ~race ~dvfs =
  let r = Energy.to_joules race in
  if r <= 0.0 then 0.0 else (r -. Energy.to_joules dvfs) /. r
