(** Ambient-intelligence usage scenarios: the demands a function places on
    a node (computation, communication, sensing, activation pattern),
    feeding the function-to-network mapping and lifetime analyses. *)

open Amb_units

type t = {
  name : string;
  compute_rate : Frequency.t;  (** sustained ops/s while active *)
  comm_rate : Data_rate.t;  (** bits/s exchanged while active *)
  sample_rate : Frequency.t;  (** sensor samples/s while active *)
  activation : Traffic.t;  (** how often the function activates *)
  active_duration : Time_span.t;  (** duration of one activation *)
}

val make :
  name:string ->
  compute_rate:Frequency.t ->
  comm_rate:Data_rate.t ->
  sample_rate:Frequency.t ->
  activation:Traffic.t ->
  active_duration:Time_span.t ->
  t
(** Raises [Invalid_argument] on non-positive activation durations. *)

val duty : t -> float
(** Long-run fraction of time active (capped at 1). *)

val average_compute : t -> Frequency.t
val average_comm : t -> Data_rate.t

val environmental_sensing : t
val presence_detection : t
val voice_interface : t
val audio_playback : t
val video_streaming : t
val media_server : t
val catalogue : t list
