(** Periodic real-time tasks.

    The unit of computation demand: a task executes [ops] operations every
    [period], due by [deadline] (defaults to the period).  Utilisation is
    relative to a processing capacity in ops/s. *)

open Amb_units

type t = {
  name : string;
  ops : float;  (** operations per activation *)
  period : Time_span.t;
  deadline : Time_span.t;
}

let make ?deadline ~name ~ops ~period () =
  if ops < 0.0 then invalid_arg "Task.make: negative work";
  if Time_span.to_seconds period <= 0.0 then invalid_arg "Task.make: non-positive period";
  let deadline = match deadline with None -> period | Some d -> d in
  if Time_span.to_seconds deadline <= 0.0 then invalid_arg "Task.make: non-positive deadline";
  { name; ops; period; deadline }

(** [rate task] — required throughput, ops/s. *)
let rate task = Frequency.hertz (task.ops /. Time_span.to_seconds task.period)

(** [utilization task ~capacity] — fraction of [capacity] (ops/s) the task
    consumes. *)
let utilization task ~capacity =
  let c = Frequency.to_hertz capacity in
  if c <= 0.0 then invalid_arg "Task.utilization: non-positive capacity";
  task.ops /. Time_span.to_seconds task.period /. c

(** [execution_time task ~capacity] — time per activation at [capacity]. *)
let execution_time task ~capacity =
  let c = Frequency.to_hertz capacity in
  if c <= 0.0 then invalid_arg "Task.execution_time: non-positive capacity";
  Time_span.seconds (task.ops /. c)

(** [total_rate tasks] — aggregate demand of a task set. *)
let total_rate tasks =
  Frequency.hertz (List.fold_left (fun acc t -> acc +. Frequency.to_hertz (rate t)) 0.0 tasks)

(** [total_utilization tasks ~capacity]. *)
let total_utilization tasks ~capacity =
  List.fold_left (fun acc t -> acc +. utilization t ~capacity) 0.0 tasks
