(** Event-driven preemptive uniprocessor scheduling: simulates EDF or
    rate-monotonic scheduling of periodic task sets and counts deadline
    misses — the executable check of the analytic bounds in {!Scheduler}
    (experiment E21). *)

open Amb_units

type policy =
  | Earliest_deadline_first
  | Rate_monotonic

val policy_name : policy -> string

type job = {
  task_index : int;
  release : float;
  absolute_deadline : float;
  mutable remaining_ops : float;
  mutable miss_counted : bool;  (** deadline overrun already tallied *)
}

type outcome = {
  jobs_released : int;
  jobs_completed : int;
  deadline_misses : int;
  busy_fraction : float;  (** processor utilisation observed *)
  max_lateness : Time_span.t;  (** worst completion - deadline *)
}

val run : policy:policy -> tasks:Task.t list -> capacity:Frequency.t -> horizon:Time_span.t -> outcome
(** Simulate until the horizon; jobs past their deadline keep running
    (counted as misses, contributing lateness).  Raises
    [Invalid_argument] on empty task sets or non-positive
    capacity/horizon. *)

val schedulable_in_simulation :
  policy:policy -> tasks:Task.t list -> capacity:Frequency.t -> horizon:Time_span.t -> bool
(** Zero misses over the horizon (use several hyperperiods). *)
