(** Ambient-intelligence usage scenarios.

    A scenario bundles the demands an ambient function places on a node:
    sustained computation, communication, sensing activity and how often
    the function activates.  These feed the function→network mapping of
    [Amb_core.Mapping] and the node-level lifetime analyses. *)

open Amb_units

type t = {
  name : string;
  compute_rate : Frequency.t;  (** sustained ops/s while active *)
  comm_rate : Data_rate.t;  (** bits/s exchanged while active *)
  sample_rate : Frequency.t;  (** sensor samples/s while active *)
  activation : Traffic.t;  (** how often the function activates *)
  active_duration : Time_span.t;  (** duration of one activation *)
}

let make ~name ~compute_rate ~comm_rate ~sample_rate ~activation ~active_duration =
  if Time_span.to_seconds active_duration <= 0.0 then
    invalid_arg "Scenario.make: non-positive activation duration";
  { name; compute_rate; comm_rate; sample_rate; activation; active_duration }

(** [duty scenario] — long-run fraction of time active (capped at 1). *)
let duty scenario =
  Float.min 1.0
    (Traffic.mean_rate scenario.activation *. Time_span.to_seconds scenario.active_duration)

(** [average_compute scenario] — long-run average ops/s demand. *)
let average_compute scenario = Frequency.scale (duty scenario) scenario.compute_rate

(** [average_comm scenario] — long-run average bits/s demand. *)
let average_comm scenario = Data_rate.scale (duty scenario) scenario.comm_rate

(* --- The keynote's motivating functions, one per device class. --- *)

(** Periodic environmental sensing: a reading every 30 s, 50 ms of activity
    (µW-node duty). *)
let environmental_sensing =
  make ~name:"environmental sensing" ~compute_rate:(Frequency.megahertz 1.0)
    ~comm_rate:(Data_rate.kilobits_per_second 76.8) ~sample_rate:(Frequency.hertz 10.0)
    ~activation:(Traffic.periodic (Time_span.seconds 30.0))
    ~active_duration:(Time_span.milliseconds 50.0)

(** Presence detection: PIR events, Poisson at ~2/minute in a lived-in
    room. *)
let presence_detection =
  make ~name:"presence detection" ~compute_rate:(Frequency.megahertz 0.5)
    ~comm_rate:(Data_rate.kilobits_per_second 76.8) ~sample_rate:(Frequency.hertz 5.0)
    ~activation:(Traffic.poisson (2.0 /. 60.0))
    ~active_duration:(Time_span.milliseconds 20.0)

(** Voice user interface: speech front-end bursts of 2 s, a few per
    minute (mW-node). *)
let voice_interface =
  make ~name:"voice interface" ~compute_rate:(Frequency.megahertz 50.0)
    ~comm_rate:(Data_rate.kilobits_per_second 64.0) ~sample_rate:(Frequency.hertz 16000.0)
    ~activation:(Traffic.poisson (3.0 /. 60.0))
    ~active_duration:(Time_span.seconds 2.0)

(** Portable audio playback: continuous decode (mW-node). *)
let audio_playback =
  make ~name:"audio playback" ~compute_rate:(Frequency.megahertz 30.0)
    ~comm_rate:(Data_rate.kilobits_per_second 128.0) ~sample_rate:(Frequency.hertz 44100.0)
    ~activation:(Traffic.periodic (Time_span.seconds 1.0))
    ~active_duration:(Time_span.seconds 1.0)

(** Ambient video streaming: continuous SD decode + WLAN (W-node). *)
let video_streaming =
  make ~name:"video streaming" ~compute_rate:(Frequency.gigahertz 2.5)
    ~comm_rate:(Data_rate.megabits_per_second 4.0) ~sample_rate:Frequency.zero
    ~activation:(Traffic.periodic (Time_span.seconds 1.0))
    ~active_duration:(Time_span.seconds 1.0)

(** Home media serving: transcode + distribute a remote stream (W-node). *)
let media_server =
  make ~name:"media server" ~compute_rate:(Frequency.gigahertz 8.0)
    ~comm_rate:(Data_rate.megabits_per_second 6.0) ~sample_rate:Frequency.zero
    ~activation:(Traffic.periodic (Time_span.seconds 1.0))
    ~active_duration:(Time_span.seconds 1.0)

let catalogue =
  [ environmental_sensing; presence_detection; voice_interface; audio_playback; video_streaming;
    media_server ]
