(** Preamble-sampling (low-power-listening) MAC, analysed in closed form:
    receivers sample the channel every wake-up interval; senders stretch
    the preamble to one full interval.  The interval trades sampling cost
    against preamble cost — experiment E9 regenerates the U-curve and its
    optimum. *)

open Amb_units
open Amb_circuit

type t = {
  radio : Radio_frontend.t;
  t_wakeup : Time_span.t;  (** channel-sampling period *)
  t_cca : Time_span.t;  (** clear-channel-assessment duration per sample *)
  tx_dbm : float;
  packet : Packet.t;
}

val make :
  ?t_cca:Time_span.t ->
  ?tx_dbm:float ->
  radio:Radio_frontend.t ->
  t_wakeup:Time_span.t ->
  packet:Packet.t ->
  unit ->
  t
(** Raises [Invalid_argument] on a non-positive wake-up interval. *)

val packet_airtime : t -> Time_span.t

val sampling_power : t -> Power.t
(** Cost of periodic listening: per sample, a radio start-up plus a CCA at
    RX power. *)

val tx_energy_per_packet : t -> Energy.t
(** Start-up + full-interval preamble + frame. *)

val rx_energy_per_packet : t -> Energy.t
(** Half an interval of preamble listening (mean) plus the frame. *)

val average_power : t -> tx_rate:float -> rx_rate:float -> Power.t
(** Node-level average radio power at given sent/received packet rates;
    raises [Invalid_argument] on negative rates. *)

val optimal_wakeup : t -> tx_rate:float -> rx_rate:float -> Time_span.t
(** Closed-form power-minimising interval:
    T* = sqrt(E_sample / (tx_rate * P_tx + rx_rate * P_rx / 2)). *)

val optimal_wakeup_numeric : t -> tx_rate:float -> rx_rate:float -> Time_span.t
(** Golden-section check of {!optimal_wakeup}. *)

val latency : t -> Time_span.t
(** Expected one-hop delivery latency: half an interval plus the frame
    airtime. *)
