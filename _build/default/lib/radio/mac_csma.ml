(** Unslotted random access (pure-ALOHA-style contention model).

    For lightly loaded ambient networks, random access is attractive
    because idle nodes pay nothing for coordination; the price is
    collisions.  The classic analysis: with normalised offered load [g]
    (attempts per packet airtime), a transmission succeeds with
    probability exp(-2g). *)

open Amb_units
open Amb_circuit

type t = {
  radio : Radio_frontend.t;
  packet : Packet.t;
  tx_dbm : float;
  max_retries : int;
}

let make ?(tx_dbm = 0.0) ?(max_retries = 7) ~radio ~packet () =
  if max_retries < 0 then invalid_arg "Mac_csma.make: negative retry limit";
  { radio; packet; tx_dbm; max_retries }

let packet_airtime mac =
  Data_rate.transfer_time mac.radio.Radio_frontend.bitrate (Packet.total_bits mac.packet)

(** [offered_load mac ~attempt_rate] — normalised load g = rate x airtime
    (aggregate over the contention domain). *)
let offered_load mac ~attempt_rate = attempt_rate *. Time_span.to_seconds (packet_airtime mac)

(** [success_probability ~g] — pure-ALOHA vulnerability window of two
    airtimes. *)
let success_probability ~g =
  if g < 0.0 then invalid_arg "Mac_csma.success_probability: negative load";
  Float.exp (-2.0 *. g)

(** [throughput ~g] — normalised channel throughput S = g exp(-2g); maximal
    at g = 0.5. *)
let throughput ~g = g *. success_probability ~g

(** [expected_attempts mac ~g] — mean transmissions per delivered packet,
    truncated at the retry limit; [None] when delivery fails even after all
    retries with probability > 1%. *)
let expected_attempts mac ~g =
  let p = success_probability ~g in
  if p <= 0.0 then None
  else
    let n = Float.of_int (mac.max_retries + 1) in
    let p_fail_all = (1.0 -. p) ** n in
    if p_fail_all > 0.01 then None
    else
      (* Truncated-geometric mean number of trials. *)
      Some ((1.0 -. p_fail_all) /. p)

(** [energy_per_delivered_packet mac ~g] — TX energy times expected
    attempts, plus one receive-side frame; [None] when the load makes
    delivery unreliable. *)
let energy_per_delivered_packet mac ~g =
  match expected_attempts mac ~g with
  | None -> None
  | Some attempts ->
    let e_tx =
      Radio_frontend.transmit_energy mac.radio ~tx_dbm:mac.tx_dbm
        ~bits:(Packet.total_bits mac.packet) ~include_startup:true
    in
    let e_rx =
      Radio_frontend.receive_energy mac.radio ~bits:(Packet.total_bits mac.packet)
        ~include_startup:true
    in
    Some (Energy.add (Energy.scale attempts e_tx) e_rx)

(** [optimal_load] — the throughput-maximising normalised load (0.5 for
    the two-airtime vulnerability window). *)
let optimal_load = 0.5
