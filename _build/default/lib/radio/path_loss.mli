(** Radio propagation: free-space (Friis) and log-distance models, the
    latter with indoor exponents of 2.5-4. *)

val speed_of_light : float

type model =
  | Free_space
  | Log_distance of { exponent : float; reference_m : float }
      (** Friis up to [reference_m], then 10*n*log10(d/d0) beyond *)

val free_space : model

val log_distance : ?reference_m:float -> float -> model
(** Raises [Invalid_argument] for exponents below 1 or non-positive
    reference distances. *)

val indoor : model
(** Through-wall indoor environment, n = 3.3. *)

val open_office : model
(** Open office, n = 2.5. *)

val friis_loss_db : carrier_hz:float -> distance_m:float -> float

val loss_db : model -> carrier_hz:float -> distance_m:float -> float
(** Path loss in dB; zero at or below zero distance; raises
    [Invalid_argument] on a non-positive carrier. *)

val received_dbm : model -> tx_dbm:float -> carrier_hz:float -> distance_m:float -> float

val max_range : model -> tx_dbm:float -> carrier_hz:float -> threshold_dbm:float -> float
(** Largest distance keeping the received level above a threshold
    (monotone bisection); 0 when even contact fails. *)
