(** Unslotted random access (pure-ALOHA-style contention): idle nodes pay
    nothing for coordination, colliding ones pay retransmissions.  With
    normalised offered load [g], a transmission succeeds with probability
    exp(-2g). *)

open Amb_units
open Amb_circuit

type t = {
  radio : Radio_frontend.t;
  packet : Packet.t;
  tx_dbm : float;
  max_retries : int;
}

val make : ?tx_dbm:float -> ?max_retries:int -> radio:Radio_frontend.t -> packet:Packet.t -> unit -> t
(** Default 7 retries; raises [Invalid_argument] on negative limits. *)

val packet_airtime : t -> Time_span.t

val offered_load : t -> attempt_rate:float -> float
(** Normalised load g = rate x airtime (aggregate over the contention
    domain). *)

val success_probability : g:float -> float
(** exp(-2g); raises [Invalid_argument] on negative loads. *)

val throughput : g:float -> float
(** Normalised channel throughput S = g exp(-2g); maximal at g = 0.5. *)

val expected_attempts : t -> g:float -> float option
(** Mean transmissions per delivered packet, truncated at the retry
    limit; [None] when delivery still fails with probability > 1%. *)

val energy_per_delivered_packet : t -> g:float -> Energy.t option
(** TX energy times expected attempts plus one receive-side frame. *)

val optimal_load : float
(** The throughput-maximising normalised load (0.5). *)
