(** Frame formats.  Ambient traffic is dominated by tiny payloads, so
    framing overhead and radio start-up — not the payload — set the energy
    cost; this module makes the overhead explicit. *)

open Amb_units

type t = {
  preamble_bits : float;
  header_bits : float;
  payload_bits : float;
  crc_bits : float;
}

val make : ?preamble_bits:float -> ?header_bits:float -> ?crc_bits:float -> payload_bits:float -> unit -> t
(** Defaults: 32-bit preamble, 64-bit header, 16-bit CRC.  Raises
    [Invalid_argument] on negative payloads. *)

val sensor_reading : t
(** A 4-byte reading in a conventional short frame. *)

val sensor_report : t
(** A 32-byte aggregated report. *)

val stream_frame : t
(** A 1500-byte streaming frame. *)

val total_bits : t -> float

val overhead_fraction : t -> float
(** Share of on-air bits carrying no payload. *)

val airtime : t -> Data_rate.t -> Time_span.t

val goodput : t -> Data_rate.t -> Data_rate.t
(** Payload bits per second of airtime. *)

val with_preamble : t -> preamble_bits:float -> t
(** Same frame with a stretched preamble (for preamble-sampling MACs). *)
