(** Frame formats.

    Ambient-intelligence traffic is dominated by tiny payloads (a sensor
    reading is a few bytes), so framing overhead and the radio's start-up
    energy — not the payload — set the energy cost.  This module makes the
    overhead explicit. *)

open Amb_units

type t = {
  preamble_bits : float;
  header_bits : float;
  payload_bits : float;
  crc_bits : float;
}

let make ?(preamble_bits = 32.0) ?(header_bits = 64.0) ?(crc_bits = 16.0) ~payload_bits () =
  if payload_bits < 0.0 then invalid_arg "Packet.make: negative payload";
  { preamble_bits; header_bits; payload_bits; crc_bits }

(** A 4-byte sensor reading in a conventional short frame. *)
let sensor_reading = make ~payload_bits:32.0 ()

(** A 32-byte aggregated report. *)
let sensor_report = make ~payload_bits:256.0 ()

(** A 1500-byte streaming frame. *)
let stream_frame = make ~payload_bits:12000.0 ()

let total_bits p = p.preamble_bits +. p.header_bits +. p.payload_bits +. p.crc_bits

(** [overhead_fraction p] — share of on-air bits that carry no payload. *)
let overhead_fraction p =
  let total = total_bits p in
  if total <= 0.0 then 0.0 else (total -. p.payload_bits) /. total

(** [airtime p rate] — on-air duration at [rate]. *)
let airtime p rate = Data_rate.transfer_time rate (total_bits p)

(** [goodput p rate] — payload bits per second of airtime. *)
let goodput p rate =
  let t = Time_span.to_seconds (airtime p rate) in
  if t <= 0.0 then Data_rate.zero else Data_rate.bits_per_second (p.payload_bits /. t)

(** [with_preamble p bits] — same frame with a stretched preamble (used by
    preamble-sampling MACs, whose wake-up interval dictates preamble
    length). *)
let with_preamble p ~preamble_bits = { p with preamble_bits }
