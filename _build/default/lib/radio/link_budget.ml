(** Link-budget analysis tying the radio front-end to the channel.

    Answers the questions that size the communication electronics of each
    node class: how far does a given TX level reach, what TX level does a
    given distance require, and how much energy does a delivered bit cost
    at that distance. *)

open Amb_units
open Amb_circuit

type t = {
  radio : Radio_frontend.t;
  channel : Path_loss.model;
  fade_margin_db : float;  (** safety margin on top of sensitivity *)
}

let make ?(fade_margin_db = 10.0) ~radio ~channel () =
  if fade_margin_db < 0.0 then invalid_arg "Link_budget.make: negative margin";
  { radio; channel; fade_margin_db }

(** [noise_floor_dbm link] — receiver noise floor. *)
let noise_floor_dbm link =
  Decibel.noise_floor_dbm ~bandwidth_hz:link.radio.Radio_frontend.bandwidth_hz
    ~noise_figure_db:link.radio.Radio_frontend.noise_figure_db

(** [received_dbm link ~tx_dbm ~distance_m]. *)
let received_dbm link ~tx_dbm ~distance_m =
  Path_loss.received_dbm link.channel ~tx_dbm
    ~carrier_hz:link.radio.Radio_frontend.carrier_hz ~distance_m

(** [snr_db link ~tx_dbm ~distance_m] — SNR at the detector. *)
let snr_db link ~tx_dbm ~distance_m =
  received_dbm link ~tx_dbm ~distance_m -. noise_floor_dbm link

(** [closes link ~tx_dbm ~distance_m] — does the link close with margin? *)
let closes link ~tx_dbm ~distance_m =
  received_dbm link ~tx_dbm ~distance_m
  >= link.radio.Radio_frontend.sensitivity_dbm +. link.fade_margin_db

(** [max_range link ~tx_dbm] — metres. *)
let max_range link ~tx_dbm =
  Path_loss.max_range link.channel ~tx_dbm ~carrier_hz:link.radio.Radio_frontend.carrier_hz
    ~threshold_dbm:(link.radio.Radio_frontend.sensitivity_dbm +. link.fade_margin_db)

(** [required_tx_dbm link ~distance_m] — the minimum TX level closing the
    link at [distance_m]; [None] when even the radio's maximum does not
    reach. *)
let required_tx_dbm link ~distance_m =
  let loss =
    Path_loss.loss_db link.channel ~carrier_hz:link.radio.Radio_frontend.carrier_hz ~distance_m
  in
  let needed = link.radio.Radio_frontend.sensitivity_dbm +. link.fade_margin_db +. loss in
  if needed > link.radio.Radio_frontend.max_tx_dbm then None else Some needed

(** [energy_per_delivered_bit link ~distance_m ~packet_bits] — TX energy
    per bit at the minimum closing TX level, including amortised start-up;
    [None] when the link cannot close.  The E8 curve. *)
let energy_per_delivered_bit link ~distance_m ~packet_bits =
  match required_tx_dbm link ~distance_m with
  | None -> None
  | Some tx_dbm ->
    Some (Radio_frontend.effective_energy_per_bit link.radio ~tx_dbm ~bits:packet_bits)

(** [tx_power_at link ~distance_m] — DC power while transmitting at the
    minimum closing level; [None] when out of reach. *)
let tx_power_at link ~distance_m =
  match required_tx_dbm link ~distance_m with
  | None -> None
  | Some tx_dbm -> Some (Radio_frontend.tx_power link.radio ~tx_dbm)
