(** Preamble-sampling (low-power-listening) MAC, analysed in closed form.

    The canonical microWatt-node MAC (B-MAC / WiseMAC family): receivers
    sleep and sample the channel every wake-up interval [t_wakeup]; senders
    stretch the preamble to one full interval so the receiver cannot miss
    it.  The wake-up interval trades sampling cost (short intervals) against
    preamble cost (long intervals); experiment E9 regenerates the resulting
    U-shaped power curve and its optimum. *)

open Amb_units
open Amb_circuit

type t = {
  radio : Radio_frontend.t;
  t_wakeup : Time_span.t;  (** channel-sampling period *)
  t_cca : Time_span.t;  (** clear-channel-assessment duration per sample *)
  tx_dbm : float;
  packet : Packet.t;
}

let make ?(t_cca = Time_span.microseconds 350.0) ?(tx_dbm = 0.0) ~radio ~t_wakeup ~packet () =
  if Time_span.to_seconds t_wakeup <= 0.0 then
    invalid_arg "Mac_duty_cycle.make: non-positive wake-up interval";
  { radio; t_wakeup; t_cca; tx_dbm; packet }

let packet_airtime mac =
  Data_rate.transfer_time mac.radio.Radio_frontend.bitrate (Packet.total_bits mac.packet)

(** [sampling_power mac] — cost of periodically listening: each sample pays
    a radio start-up plus a CCA at RX power. *)
let sampling_power mac =
  let per_sample =
    Energy.add
      (Radio_frontend.startup_energy mac.radio)
      (Energy.of_power_time mac.radio.Radio_frontend.p_rx mac.t_cca)
  in
  Power.watts (Energy.to_joules per_sample /. Time_span.to_seconds mac.t_wakeup)

(** [tx_energy_per_packet mac] — start-up + full-interval preamble +
    frame. *)
let tx_energy_per_packet mac =
  let p_tx = Radio_frontend.tx_power mac.radio ~tx_dbm:mac.tx_dbm in
  let preamble = Energy.of_power_time p_tx mac.t_wakeup in
  let frame = Energy.of_power_time p_tx (packet_airtime mac) in
  Energy.sum [ Radio_frontend.startup_energy mac.radio; preamble; frame ]

(** [rx_energy_per_packet mac] — the receiver wakes in the middle of the
    preamble on average: half an interval of listening plus the frame. *)
let rx_energy_per_packet mac =
  let half_preamble = Energy.of_power_time mac.radio.Radio_frontend.p_rx
                        (Time_span.scale 0.5 mac.t_wakeup) in
  let frame = Energy.of_power_time mac.radio.Radio_frontend.p_rx (packet_airtime mac) in
  Energy.add half_preamble frame

(** [average_power mac ~tx_rate ~rx_rate] — node-level average radio power
    at [tx_rate] sent and [rx_rate] received packets per second. *)
let average_power mac ~tx_rate ~rx_rate =
  if tx_rate < 0.0 || rx_rate < 0.0 then invalid_arg "Mac_duty_cycle.average_power: negative rate";
  Power.sum
    [ mac.radio.Radio_frontend.p_sleep;
      sampling_power mac;
      Power.watts (tx_rate *. Energy.to_joules (tx_energy_per_packet mac));
      Power.watts (rx_rate *. Energy.to_joules (rx_energy_per_packet mac));
    ]

(** [optimal_wakeup mac ~tx_rate ~rx_rate] — the interval minimising
    {!average_power}, in closed form: the sampling term falls as 1/T, the
    preamble terms grow linearly in T, so
    T* = sqrt(E_sample / (tx_rate * P_tx + rx_rate * P_rx / 2)). *)
let optimal_wakeup mac ~tx_rate ~rx_rate =
  let e_sample =
    Energy.to_joules
      (Energy.add
         (Radio_frontend.startup_energy mac.radio)
         (Energy.of_power_time mac.radio.Radio_frontend.p_rx mac.t_cca))
  in
  let p_tx = Power.to_watts (Radio_frontend.tx_power mac.radio ~tx_dbm:mac.tx_dbm) in
  let p_rx = Power.to_watts mac.radio.Radio_frontend.p_rx in
  let slope = (tx_rate *. p_tx) +. (0.5 *. rx_rate *. p_rx) in
  if slope <= 0.0 then Time_span.forever
  else Time_span.seconds (Float.sqrt (e_sample /. slope))

(** [optimal_wakeup_numeric mac ~tx_rate ~rx_rate] — golden-section search
    over {!average_power}; the unit tests check it agrees with the closed
    form. *)
let optimal_wakeup_numeric mac ~tx_rate ~rx_rate =
  let power_at t =
    Power.to_watts (average_power { mac with t_wakeup = Time_span.seconds t } ~tx_rate ~rx_rate)
  in
  let phi = (Float.sqrt 5.0 -. 1.0) /. 2.0 in
  let rec golden lo hi n =
    if n = 0 then 0.5 *. (lo +. hi)
    else
      let a = hi -. ((hi -. lo) *. phi) and b = lo +. ((hi -. lo) *. phi) in
      if power_at a < power_at b then golden lo b (n - 1) else golden a hi (n - 1)
  in
  Time_span.seconds (golden 1e-4 100.0 100)

(** [latency mac] — expected one-hop delivery latency: half a wake-up
    interval of preamble plus the frame airtime. *)
let latency mac =
  Time_span.add (Time_span.scale 0.5 mac.t_wakeup) (packet_airtime mac)
