lib/radio/mac_tdma.ml: Amb_circuit Amb_units Clocking Data_rate Energy Float Power Radio_frontend Time_span
