lib/radio/packet.ml: Amb_units Data_rate Time_span
