lib/radio/mac_tdma.mli: Amb_circuit Amb_units Clocking Data_rate Power Radio_frontend Time_span
