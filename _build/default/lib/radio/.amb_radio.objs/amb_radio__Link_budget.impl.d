lib/radio/link_budget.ml: Amb_circuit Amb_units Decibel Path_loss Radio_frontend
