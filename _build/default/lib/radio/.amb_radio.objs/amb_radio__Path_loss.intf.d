lib/radio/path_loss.mli:
