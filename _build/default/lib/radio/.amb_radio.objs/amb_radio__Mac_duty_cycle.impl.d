lib/radio/mac_duty_cycle.ml: Amb_circuit Amb_units Data_rate Energy Float Packet Power Radio_frontend Time_span
