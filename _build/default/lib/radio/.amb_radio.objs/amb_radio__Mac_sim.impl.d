lib/radio/mac_sim.ml: Amb_circuit Amb_sim Amb_units Data_rate Energy Engine Float List Mac_csma Packet Radio_frontend Rng Time_span
