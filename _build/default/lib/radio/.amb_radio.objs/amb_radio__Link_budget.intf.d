lib/radio/link_budget.mli: Amb_circuit Amb_units Path_loss Radio_frontend
