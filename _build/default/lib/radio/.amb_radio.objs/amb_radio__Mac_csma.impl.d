lib/radio/mac_csma.ml: Amb_circuit Amb_units Data_rate Energy Float Packet Radio_frontend Time_span
