lib/radio/modulation.mli:
