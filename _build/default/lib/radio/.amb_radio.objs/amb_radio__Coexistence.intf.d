lib/radio/coexistence.mli: Amb_circuit Amb_units Packet Radio_frontend Time_span
