lib/radio/path_loss.ml: Float
