lib/radio/mac_sim.mli: Amb_circuit Amb_units Energy Packet Radio_frontend Time_span
