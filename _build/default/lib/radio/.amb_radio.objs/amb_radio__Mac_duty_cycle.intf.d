lib/radio/mac_duty_cycle.mli: Amb_circuit Amb_units Energy Packet Power Radio_frontend Time_span
