lib/radio/packet.mli: Amb_units Data_rate Time_span
