lib/radio/modulation.ml: Float
