lib/radio/mac_csma.mli: Amb_circuit Amb_units Energy Packet Radio_frontend Time_span
