lib/radio/coexistence.ml: Amb_circuit Amb_units Data_rate Float List Packet Radio_frontend Time_span
