(** Synchronised TDMA MAC.

    The alternative to preamble sampling: nodes share a slotted frame and
    wake only in their own slots, paying instead for periodic
    resynchronisation and clock-drift guard times.  Used by the network
    experiments to contrast scheduled against asynchronous access. *)

open Amb_units
open Amb_circuit

type t = {
  radio : Radio_frontend.t;
  slot : Time_span.t;
  slots_per_frame : int;
  sync_listen : Time_span.t;  (** beacon listen per frame *)
  clock : Clocking.t;  (** the timebase that keeps slots aligned *)
  tx_dbm : float;
}

let make ?(tx_dbm = 0.0) ~radio ~slot ~slots_per_frame ~sync_listen ~clock () =
  if slots_per_frame <= 0 then invalid_arg "Mac_tdma.make: non-positive slot count";
  if Time_span.to_seconds slot <= 0.0 then invalid_arg "Mac_tdma.make: non-positive slot";
  { radio; slot; slots_per_frame; sync_listen; clock; tx_dbm }

let frame_period mac = Time_span.scale (Float.of_int mac.slots_per_frame) mac.slot

(** [guard_time mac] — worst-case two-sided clock drift accumulated over a
    frame; each active slot is padded by it. *)
let guard_time mac = Time_span.scale 2.0 (Clocking.drift_over mac.clock (frame_period mac))

(** [duty_cycle mac ~tx_slots ~rx_slots] — fraction of time awake. *)
let duty_cycle mac ~tx_slots ~rx_slots =
  if tx_slots < 0 || rx_slots < 0 then invalid_arg "Mac_tdma.duty_cycle: negative slot count";
  if tx_slots + rx_slots > mac.slots_per_frame then
    invalid_arg "Mac_tdma.duty_cycle: more active slots than frame slots";
  let active = Float.of_int (tx_slots + rx_slots) in
  let guard = Time_span.to_seconds (guard_time mac) in
  let awake =
    (active *. (Time_span.to_seconds mac.slot +. guard)) +. Time_span.to_seconds mac.sync_listen
  in
  Float.min 1.0 (awake /. Time_span.to_seconds (frame_period mac))

(** [average_power mac ~tx_slots ~rx_slots] — node-level average radio
    power with [tx_slots] transmit and [rx_slots] receive slots per
    frame. *)
let average_power mac ~tx_slots ~rx_slots =
  let frame = Time_span.to_seconds (frame_period mac) in
  let guard = guard_time mac in
  let slot_plus_guard = Time_span.add mac.slot guard in
  let p_tx = Radio_frontend.tx_power mac.radio ~tx_dbm:mac.tx_dbm in
  let e_tx = Energy.scale (Float.of_int tx_slots) (Energy.of_power_time p_tx slot_plus_guard) in
  let e_rx =
    Energy.scale (Float.of_int rx_slots)
      (Energy.of_power_time mac.radio.Radio_frontend.p_rx slot_plus_guard)
  in
  let e_sync = Energy.of_power_time mac.radio.Radio_frontend.p_rx mac.sync_listen in
  let wakeups = Float.of_int (tx_slots + rx_slots) +. 1.0 in
  let e_startup = Energy.scale wakeups (Radio_frontend.startup_energy mac.radio) in
  let active_energy = Energy.sum [ e_tx; e_rx; e_sync; e_startup ] in
  Power.add mac.radio.Radio_frontend.p_sleep (Power.watts (Energy.to_joules active_energy /. frame))

(** [throughput mac ~tx_slots] — payload-agnostic raw throughput of the
    assigned transmit slots. *)
let throughput mac ~tx_slots =
  let share = Float.of_int tx_slots /. Float.of_int mac.slots_per_frame in
  Data_rate.scale share mac.radio.Radio_frontend.bitrate

(** [latency mac] — expected wait for the node's next slot: half a frame. *)
let latency mac = Time_span.scale 0.5 (frame_period mac)
