(** Modulation schemes and bit-error-rate models as functions of per-bit
    SNR (Eb/N0, linear), using a numerically stable erfc approximation. *)

type t =
  | Ook  (** on-off keying, non-coherent *)
  | Fsk_noncoherent
  | Bpsk
  | Qpsk

val name : t -> string
val bits_per_symbol : t -> float

val erfc : float -> float
(** Abramowitz & Stegun 7.1.26 rational approximation (max abs error
    1.5e-7). *)

val q_function : float -> float
(** Gaussian tail probability Q(x) = erfc(x / sqrt 2) / 2. *)

val ber : t -> ebn0:float -> float
(** Bit error rate at linear per-bit SNR; raises [Invalid_argument] on
    negative Eb/N0. *)

val packet_success_probability : t -> ebn0:float -> bits:float -> float
(** Probability that all bits arrive uncorrupted (independent errors). *)

val required_ebn0 : t -> target_ber:float -> float
(** The Eb/N0 achieving a target BER (monotone bisection); raises
    [Invalid_argument] for targets outside (0, 0.5). *)
