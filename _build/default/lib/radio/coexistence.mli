(** Coexistence in shared spectrum: overlap probability of a victim packet
    under Poisson interference bursts, capture effect, and the
    retransmission-energy multiplier (experiment E24). *)

open Amb_units
open Amb_circuit

type interferer = {
  name : string;
  burst_rate_hz : float;  (** bursts per second on the victim's channel *)
  burst_airtime : Time_span.t;  (** duration of one burst *)
  typical_rssi_dbm : float;  (** interferer level at the victim receiver *)
}

val interferer :
  name:string -> burst_rate_hz:float -> burst_airtime:Time_span.t -> typical_rssi_dbm:float -> interferer
(** Raises [Invalid_argument] on negative rates or non-positive
    airtimes. *)

val bluetooth_voice : interferer
val wlan_light : interferer
val wlan_streaming : interferer
val microwave_oven : interferer

val overlap_probability : victim_airtime:Time_span.t -> interferer -> float
(** Probability one victim packet overlaps at least one burst:
    1 - exp(-rate * (T_victim + T_burst)). *)

val survives_overlap :
  victim_rssi_dbm:float -> capture_margin_db:float -> interferer -> bool
(** The capture effect: decode through the collision when the victim is
    sufficiently stronger. *)

val delivery_probability :
  ?capture_margin_db:float ->
  victim_airtime:Time_span.t ->
  victim_rssi_dbm:float ->
  interferer list ->
  float
(** Through the whole mix (independent interferers); default capture
    margin 10 dB. *)

val energy_multiplier : p_success:float -> max_retries:int -> float option
(** Expected transmissions per delivered packet with truncated
    retransmission; [None] when delivery stays unreliable after all
    retries. *)

val victim_report :
  ?capture_margin_db:float ->
  ?max_retries:int ->
  Radio_frontend.t ->
  Packet.t ->
  victim_rssi_dbm:float ->
  mixes:(string * interferer list) list ->
  (string * float * float option) list
(** (mix name, delivery probability, energy multiplier) rows. *)

val home_mixes : (string * interferer list) list
(** The standard home interference mixes of experiment E24. *)
