(** Coexistence in shared spectrum.

    The ambient home piles Bluetooth-class links, WLAN and sensor radios
    into the same 2.4 GHz band.  For a victim packet of airtime [T_v]
    under Poisson interference bursts of rate [lambda] and duration
    [T_i], the overlap probability is 1 - exp(-lambda (T_v + T_i)); a
    capture margin lets strong victims survive overlaps.  Experiment E24
    tabulates the delivery probability and retransmission-energy
    multiplier of a sensor report across home interference mixes. *)

open Amb_units
open Amb_circuit

type interferer = {
  name : string;
  burst_rate_hz : float;  (** bursts per second on the victim's channel *)
  burst_airtime : Time_span.t;  (** duration of one burst *)
  typical_rssi_dbm : float;  (** interferer level at the victim receiver *)
}

let interferer ~name ~burst_rate_hz ~burst_airtime ~typical_rssi_dbm =
  if burst_rate_hz < 0.0 then invalid_arg "Coexistence.interferer: negative rate";
  if Time_span.to_seconds burst_airtime <= 0.0 then
    invalid_arg "Coexistence.interferer: non-positive airtime";
  { name; burst_rate_hz; burst_airtime; typical_rssi_dbm }

(* Era-typical interference mixes at a living-room sensor. *)

let bluetooth_voice =
  (* A voice link hops across 79 channels at 1600 slots/s; a victim on a
     2 MHz channel sees ~2/79 of the slots. *)
  interferer ~name:"Bluetooth voice link" ~burst_rate_hz:(1600.0 *. 2.0 /. 79.0)
    ~burst_airtime:(Time_span.microseconds 366.0) ~typical_rssi_dbm:(-55.0)

let wlan_light =
  (* Browsing-grade WLAN: ~50 frames/s of ~1 ms, overlapping the victim
     channel. *)
  interferer ~name:"WLAN (light browsing)" ~burst_rate_hz:50.0
    ~burst_airtime:(Time_span.milliseconds 1.0) ~typical_rssi_dbm:(-45.0)

let wlan_streaming =
  (* A video stream: ~600 frames/s of ~1.2 ms. *)
  interferer ~name:"WLAN (video streaming)" ~burst_rate_hz:600.0
    ~burst_airtime:(Time_span.milliseconds 1.2) ~typical_rssi_dbm:(-45.0)

let microwave_oven =
  (* Magnetron duty: ~50% of a 20 ms mains cycle, wideband. *)
  interferer ~name:"microwave oven" ~burst_rate_hz:50.0
    ~burst_airtime:(Time_span.milliseconds 10.0) ~typical_rssi_dbm:(-40.0)

(** [overlap_probability ~victim_airtime i] — probability one victim
    packet overlaps at least one burst of interferer [i]. *)
let overlap_probability ~victim_airtime i =
  let window = Time_span.to_seconds victim_airtime +. Time_span.to_seconds i.burst_airtime in
  1.0 -. Float.exp (-.i.burst_rate_hz *. window)

(** [survives_overlap ~victim_rssi_dbm ~capture_margin_db i] — the capture
    effect: the victim decodes through the collision when it is at least
    [capture_margin_db] stronger than the interferer. *)
let survives_overlap ~victim_rssi_dbm ~capture_margin_db i =
  victim_rssi_dbm -. i.typical_rssi_dbm >= capture_margin_db

(** [delivery_probability ~victim_airtime ~victim_rssi_dbm
    ~capture_margin_db interferers] — probability a victim packet gets
    through the whole mix (independent interferers). *)
let delivery_probability ?(capture_margin_db = 10.0) ~victim_airtime ~victim_rssi_dbm interferers =
  List.fold_left
    (fun acc i ->
      if survives_overlap ~victim_rssi_dbm ~capture_margin_db i then acc
      else acc *. (1.0 -. overlap_probability ~victim_airtime i))
    1.0 interferers

(** [energy_multiplier ~p_success ~max_retries] — expected transmissions
    per delivered packet with truncated retransmission; [None] when the
    delivery probability after all retries stays under 99%. *)
let energy_multiplier ~p_success ~max_retries =
  if p_success <= 0.0 then None
  else
    let n = Float.of_int (max_retries + 1) in
    let p_fail_all = (1.0 -. p_success) ** n in
    if p_fail_all > 0.01 then None else Some ((1.0 -. p_fail_all) /. p_success)

(** [victim_report radio packet ~victim_rssi_dbm ~mixes] — rows of
    (mix name, delivery probability, energy multiplier) for a victim
    radio/frame pair. *)
let victim_report ?(capture_margin_db = 10.0) ?(max_retries = 7) (radio : Radio_frontend.t)
    packet ~victim_rssi_dbm ~mixes =
  let victim_airtime =
    Data_rate.transfer_time radio.Radio_frontend.bitrate (Packet.total_bits packet)
  in
  List.map
    (fun (mix_name, interferers) ->
      let p =
        delivery_probability ~capture_margin_db ~victim_airtime ~victim_rssi_dbm interferers
      in
      (mix_name, p, energy_multiplier ~p_success:p ~max_retries))
    mixes

(** The standard home mixes of experiment E24. *)
let home_mixes =
  [ ("quiet home", []);
    ("Bluetooth voice", [ bluetooth_voice ]);
    ("light WLAN", [ wlan_light ]);
    ("streaming WLAN", [ wlan_streaming ]);
    ("WLAN + microwave", [ wlan_streaming; microwave_oven ]);
  ]
