(** Synchronised TDMA MAC: nodes share a slotted frame and wake only in
    their own slots, paying for periodic resynchronisation and clock-drift
    guard times instead of idle listening. *)

open Amb_units
open Amb_circuit

type t = {
  radio : Radio_frontend.t;
  slot : Time_span.t;
  slots_per_frame : int;
  sync_listen : Time_span.t;  (** beacon listen per frame *)
  clock : Clocking.t;  (** the timebase keeping slots aligned *)
  tx_dbm : float;
}

val make :
  ?tx_dbm:float ->
  radio:Radio_frontend.t ->
  slot:Time_span.t ->
  slots_per_frame:int ->
  sync_listen:Time_span.t ->
  clock:Clocking.t ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive slot counts or durations. *)

val frame_period : t -> Time_span.t

val guard_time : t -> Time_span.t
(** Worst-case two-sided clock drift over one frame; pads each active
    slot. *)

val duty_cycle : t -> tx_slots:int -> rx_slots:int -> float
(** Fraction of time awake; raises [Invalid_argument] when the active
    slots exceed the frame. *)

val average_power : t -> tx_slots:int -> rx_slots:int -> Power.t
val throughput : t -> tx_slots:int -> Data_rate.t

val latency : t -> Time_span.t
(** Expected wait for the node's next slot: half a frame. *)
