(** Link-budget analysis tying the radio front-end to the channel: how
    far a TX level reaches, what level a distance requires, and what a
    delivered bit costs there. *)

open Amb_circuit

type t = {
  radio : Radio_frontend.t;
  channel : Path_loss.model;
  fade_margin_db : float;  (** safety margin on top of sensitivity *)
}

val make : ?fade_margin_db:float -> radio:Radio_frontend.t -> channel:Path_loss.model -> unit -> t
(** Default margin 10 dB; raises [Invalid_argument] on negative margins. *)

val noise_floor_dbm : t -> float
val received_dbm : t -> tx_dbm:float -> distance_m:float -> float
val snr_db : t -> tx_dbm:float -> distance_m:float -> float

val closes : t -> tx_dbm:float -> distance_m:float -> bool
(** Does the link close with margin? *)

val max_range : t -> tx_dbm:float -> float

val required_tx_dbm : t -> distance_m:float -> float option
(** Minimum TX level closing the link; [None] beyond the radio's
    maximum. *)

val energy_per_delivered_bit : t -> distance_m:float -> packet_bits:float -> Amb_units.Energy.t option
(** TX energy per bit at the minimum closing level, including amortised
    start-up (the E8 curve); [None] when the link cannot close. *)

val tx_power_at : t -> distance_m:float -> Amb_units.Power.t option
(** DC power while transmitting at the minimum closing level. *)
