(** Radio propagation models.

    Free-space (Friis) for line-of-sight links and log-distance for indoor
    ambient-intelligence environments, where exponents of 3-4 are
    typical. *)

let speed_of_light = 299_792_458.0

type model =
  | Free_space
  | Log_distance of { exponent : float; reference_m : float }
      (** Friis up to [reference_m], then 10*n*log10(d/d0) beyond *)

let free_space = Free_space

let log_distance ?(reference_m = 1.0) exponent =
  if exponent < 1.0 then invalid_arg "Path_loss.log_distance: exponent < 1";
  if reference_m <= 0.0 then invalid_arg "Path_loss.log_distance: non-positive reference";
  Log_distance { exponent; reference_m }

(** Typical indoor (through-wall) environment: n = 3.3. *)
let indoor = log_distance 3.3

(** Typical open office: n = 2.5. *)
let open_office = log_distance 2.5

let friis_loss_db ~carrier_hz ~distance_m =
  if distance_m <= 0.0 then 0.0
  else
    let wavelength = speed_of_light /. carrier_hz in
    20.0 *. Float.log10 (4.0 *. Float.pi *. distance_m /. wavelength)

(** [loss_db model ~carrier_hz ~distance_m] — path loss in dB.  Distances
    at or below zero lose nothing; carrier must be positive. *)
let loss_db model ~carrier_hz ~distance_m =
  if carrier_hz <= 0.0 then invalid_arg "Path_loss.loss_db: non-positive carrier";
  if distance_m <= 0.0 then 0.0
  else
    match model with
    | Free_space -> friis_loss_db ~carrier_hz ~distance_m
    | Log_distance { exponent; reference_m } ->
      let reference_loss = friis_loss_db ~carrier_hz ~distance_m:reference_m in
      if distance_m <= reference_m then friis_loss_db ~carrier_hz ~distance_m
      else reference_loss +. (10.0 *. exponent *. Float.log10 (distance_m /. reference_m))

(** [received_dbm model ~tx_dbm ~carrier_hz ~distance_m]. *)
let received_dbm model ~tx_dbm ~carrier_hz ~distance_m =
  tx_dbm -. loss_db model ~carrier_hz ~distance_m

(** [max_range model ~tx_dbm ~carrier_hz ~threshold_dbm] — the largest
    distance at which the received level stays above [threshold_dbm]
    (monotone bisection; 0 when even at contact the threshold fails). *)
let max_range model ~tx_dbm ~carrier_hz ~threshold_dbm =
  let ok d = received_dbm model ~tx_dbm ~carrier_hz ~distance_m:d >= threshold_dbm in
  if not (ok 1e-3) then 0.0
  else
    let rec bracket hi n = if n = 0 || not (ok hi) then hi else bracket (hi *. 2.0) (n - 1) in
    let hi = bracket 1.0 60 in
    if ok hi then hi
    else
      let rec bisect lo hi n =
        if n = 0 then lo
        else
          let mid = 0.5 *. (lo +. hi) in
          if ok mid then bisect mid hi (n - 1) else bisect lo mid (n - 1)
      in
      bisect 1e-3 hi 60
