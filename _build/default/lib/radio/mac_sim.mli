(** Event-driven shared-channel MAC simulation — the discrete-event
    counterpart of the {!Mac_csma} analysis (experiment E16): N Poisson
    sources on one channel, overlapping frames collide, no capture. *)

open Amb_units
open Amb_circuit

type config = {
  radio : Radio_frontend.t;
  packet : Packet.t;
  nodes : int;
  per_node_rate : float;  (** attempted packets per second per node *)
  horizon : Time_span.t;
}

val config :
  radio:Radio_frontend.t ->
  packet:Packet.t ->
  nodes:int ->
  per_node_rate:float ->
  horizon:Time_span.t ->
  config
(** Raises [Invalid_argument] on non-positive nodes, rates or horizons. *)

type outcome = {
  attempted : int;
  delivered : int;
  collided : int;
  success_rate : float;
  offered_load : float;  (** normalised g = aggregate rate x airtime *)
  throughput : float;  (** normalised S = delivered airtime fraction *)
  tx_energy : Energy.t;
  energy_per_delivered : Energy.t option;
}

val run : config -> seed:int -> outcome
(** Deterministic in the seed; node streams are split so node count does
    not perturb per-node sequences. *)

val analytic_success : g:float -> float
(** The pure-ALOHA prediction [exp (-2 g)]; the burst collision model is
    slightly stricter, so simulated success sits at or below it and
    converges as [g -> 0]. *)

val sweep : config -> loads:float list -> seed:int -> (float * float * float * float) list
(** Rows of (g, simulated success, analytic success, simulated S). *)
