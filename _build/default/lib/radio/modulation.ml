(** Modulation schemes and bit-error-rate models.

    BER as a function of per-bit SNR (Eb/N0, linear) for the schemes the
    era's low-power radios used.  The Q-function is evaluated through a
    numerically stable erfc approximation. *)

type t =
  | Ook  (** on-off keying, non-coherent *)
  | Fsk_noncoherent
  | Bpsk
  | Qpsk

let name = function
  | Ook -> "OOK"
  | Fsk_noncoherent -> "FSK (non-coherent)"
  | Bpsk -> "BPSK"
  | Qpsk -> "QPSK"

let bits_per_symbol = function Ook | Fsk_noncoherent | Bpsk -> 1.0 | Qpsk -> 2.0

(* Abramowitz & Stegun 7.1.26 rational approximation of erfc, max abs error
   1.5e-7 — ample for link-budget work. *)
let erfc x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let e = poly *. Float.exp (-.x *. x) in
  if sign > 0.0 then e else 2.0 -. e

(** Gaussian tail probability Q(x) = erfc(x / sqrt 2) / 2. *)
let q_function x = 0.5 *. erfc (x /. Float.sqrt 2.0)

(** [ber modulation ~ebn0] — bit error rate at linear per-bit SNR [ebn0]. *)
let ber modulation ~ebn0 =
  if ebn0 < 0.0 then invalid_arg "Modulation.ber: negative Eb/N0";
  match modulation with
  | Ook -> 0.5 *. Float.exp (-.ebn0 /. 4.0)
  | Fsk_noncoherent -> 0.5 *. Float.exp (-.ebn0 /. 2.0)
  | Bpsk -> q_function (Float.sqrt (2.0 *. ebn0))
  | Qpsk -> q_function (Float.sqrt (2.0 *. ebn0))

(** [packet_success_probability modulation ~ebn0 ~bits] — probability that
    all [bits] arrive uncorrupted (independent bit errors). *)
let packet_success_probability modulation ~ebn0 ~bits =
  if bits < 0.0 then invalid_arg "Modulation.packet_success_probability: negative bits";
  let p = ber modulation ~ebn0 in
  (1.0 -. p) ** bits

(** [required_ebn0 modulation ~target_ber] — the Eb/N0 achieving
    [target_ber] (monotone bisection). *)
let required_ebn0 modulation ~target_ber =
  if target_ber <= 0.0 || target_ber >= 0.5 then
    invalid_arg "Modulation.required_ebn0: target outside (0, 0.5)";
  let ok e = ber modulation ~ebn0:e <= target_ber in
  let rec bracket hi n = if n = 0 || ok hi then hi else bracket (hi *. 2.0) (n - 1) in
  let hi = bracket 1.0 60 in
  let rec bisect lo hi n =
    if n = 0 then hi
    else
      let mid = 0.5 *. (lo +. hi) in
      if ok mid then bisect lo mid (n - 1) else bisect mid hi (n - 1)
  in
  bisect 0.0 hi 80
