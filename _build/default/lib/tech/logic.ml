(** Digital-logic power on a given process node.

    The classic decomposition: P = alpha * N * E_gate * f  +  N * P_leak,
    with [alpha] the switching-activity factor. *)

open Amb_units

type block = {
  name : string;
  gates : float;  (** equivalent 2-input NAND gates *)
  activity : float;  (** fraction of gates switching per cycle, 0..1 *)
}

let block ~name ~gates ~activity =
  if gates < 0.0 then invalid_arg "Logic.block: negative gate count";
  if activity < 0.0 || activity > 1.0 then invalid_arg "Logic.block: activity outside [0,1]";
  { name; gates; activity }

(** [dynamic_power node blk f] — switching power of [blk] clocked at [f]. *)
let dynamic_power (node : Process_node.t) blk f =
  let energy_per_cycle = blk.activity *. blk.gates *. Energy.to_joules node.gate_energy in
  Power.watts (energy_per_cycle *. Frequency.to_hertz f)

(** [leakage_power node blk] — standby leakage of [blk]. *)
let leakage_power (node : Process_node.t) blk =
  Power.scale blk.gates node.leakage_per_gate

(** [total_power node blk f] — dynamic + leakage. *)
let total_power node blk f = Power.add (dynamic_power node blk f) (leakage_power node blk)

(** [energy_per_cycle node blk] — dynamic energy of one clock cycle. *)
let energy_per_cycle (node : Process_node.t) blk =
  Energy.scale (blk.activity *. blk.gates) node.gate_energy

(** [area node blk] — silicon area of [blk] on [node]. *)
let area (node : Process_node.t) blk =
  Area.square_millimetres (blk.gates /. (node.density_kgates_per_mm2 *. 1000.0))

(** [leakage_fraction node blk f] — share of leakage in the total power;
    the quantity whose growth across nodes experiment E7 tracks. *)
let leakage_fraction node blk f =
  let total = Power.to_watts (total_power node blk f) in
  if total <= 0.0 then 0.0 else Power.to_watts (leakage_power node blk) /. total

(** [frequency_for_power node blk p] — the highest clock at which [blk]
    stays within power budget [p]; [None] if even leakage alone exceeds
    the budget. *)
let frequency_for_power node blk p =
  let leak = Power.to_watts (leakage_power node blk) in
  let budget = Power.to_watts p in
  if budget < leak then None
  else
    let energy_per_cycle = blk.activity *. blk.gates *. Energy.to_joules node.gate_energy in
    if energy_per_cycle <= 0.0 then Some Frequency.(of_float Float.infinity)
    else Some (Frequency.hertz ((budget -. leak) /. energy_per_cycle))
