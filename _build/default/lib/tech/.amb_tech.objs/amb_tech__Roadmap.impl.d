lib/tech/roadmap.ml: Amb_units Energy Float List Process_node Scaling
