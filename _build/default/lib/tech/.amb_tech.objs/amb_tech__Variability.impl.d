lib/tech/variability.ml: Amb_sim Amb_units Array Float Power Process_node Stdlib
