lib/tech/roadmap.mli: Amb_units Energy Process_node
