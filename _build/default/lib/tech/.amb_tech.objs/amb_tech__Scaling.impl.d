lib/tech/scaling.ml: Amb_units Energy Float List Power Printf Process_node Time_span
