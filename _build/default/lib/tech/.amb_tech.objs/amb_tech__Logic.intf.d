lib/tech/logic.mli: Amb_units Area Energy Frequency Power Process_node
