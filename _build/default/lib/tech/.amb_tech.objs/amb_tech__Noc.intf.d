lib/tech/noc.mli: Amb_units Data_rate Energy Frequency Power Process_node
