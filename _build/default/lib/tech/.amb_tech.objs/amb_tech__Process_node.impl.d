lib/tech/process_node.ml: Amb_units Energy Format Frequency List Power Voltage
