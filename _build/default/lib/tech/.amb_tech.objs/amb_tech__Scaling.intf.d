lib/tech/scaling.mli: Amb_units Energy Power Process_node Time_span
