lib/tech/soc.mli: Amb_units Area Frequency Logic Memory Power Process_node
