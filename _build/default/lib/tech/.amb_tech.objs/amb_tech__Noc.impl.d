lib/tech/noc.ml: Amb_units Data_rate Energy Float Frequency Power Process_node
