lib/tech/variability.mli: Amb_units Power Process_node
