lib/tech/process_node.mli: Amb_units Energy Format Frequency Power Voltage
