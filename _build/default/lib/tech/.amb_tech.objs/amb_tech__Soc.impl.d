lib/tech/soc.ml: Amb_units Area Energy Float Frequency List Logic Memory Power Process_node
