lib/tech/memory.mli: Amb_units Area Energy Frequency Power Process_node
