lib/tech/memory.ml: Amb_units Area Energy Float Frequency Power Process_node
