(** On-chip interconnect energy: shared bus vs 2D-mesh network-on-chip.
    A bus charges the full-die global wire per transfer and serialises
    everyone; a mesh charges per hop and its bisection grows with size.
    Experiment E15 locates the crossover. *)

open Amb_units

type t = {
  node : Process_node.t;
  cores : int;
  die_edge_mm : float;
  wire_energy_pj_per_bit_mm : float;  (** global-wire switching energy *)
  router_energy_pj_per_bit : float;  (** per-router traversal energy *)
  bus_frequency : Frequency.t;
  bus_width_bits : float;
  link_frequency : Frequency.t;
  link_width_bits : float;
}

val make :
  ?wire_energy_pj_per_bit_mm:float ->
  ?router_energy_pj_per_bit:float ->
  ?bus_frequency:Frequency.t ->
  ?bus_width_bits:float ->
  ?link_frequency:Frequency.t ->
  ?link_width_bits:float ->
  node:Process_node.t ->
  cores:int ->
  die_edge_mm:float ->
  unit ->
  t

val mesh_side : t -> int
(** Side length of the smallest square mesh holding all cores. *)

val mean_hops : t -> float
(** Expected Manhattan distance between two uniformly random tiles. *)

val bus_energy_per_bit : t -> Energy.t
val noc_energy_per_bit : t -> Energy.t
val bus_capacity : t -> Data_rate.t
val noc_capacity : t -> Data_rate.t

type verdict = { energy_per_bit : Energy.t; capacity : Data_rate.t; saturated : bool }

val evaluate_bus : t -> demand_per_core:float -> verdict
val evaluate_noc : t -> demand_per_core:float -> verdict

val communication_power : t -> demand_per_core:float -> use_noc:bool -> Power.t
(** Aggregate interconnect power when each core moves [demand_per_core]
    bits/s. *)

val crossover_cores :
  node:Process_node.t -> die_edge_mm:float -> demand_per_core:float -> int option
(** Smallest core count at which the bus saturates while the NoC does
    not; [None] if no crossover below 1024 cores. *)
