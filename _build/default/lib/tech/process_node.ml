(** CMOS process-node parameters.

    The catalogue spans the technology generations surrounding the DATE 2003
    keynote (0.35 um down to 65 nm).  Absolute values are
    published-order-of-magnitude figures, not any foundry's proprietary
    data; the analyses in [amb_core] only rely on the trends across nodes
    (see DESIGN.md, "Substitutions"). *)

open Amb_units

type t = {
  name : string;  (** conventional node name, e.g. ["180nm"] *)
  feature_nm : float;  (** drawn feature size in nanometres *)
  year : int;  (** approximate year of volume production *)
  vdd : Voltage.t;  (** nominal supply *)
  vth : Voltage.t;  (** nominal threshold *)
  gate_energy : Energy.t;  (** dynamic energy per average gate switch *)
  gate_delay_ps : float;  (** FO4-loaded gate delay, picoseconds *)
  leakage_per_gate : Power.t;  (** standby leakage per gate at 25 C *)
  density_kgates_per_mm2 : float;  (** logic density, kgates / mm^2 *)
  sram_bit_area_um2 : float;  (** 6T SRAM cell area, um^2 *)
}

let make ~name ~feature_nm ~year ~vdd_v ~vth_v ~gate_energy_fj ~gate_delay_ps
    ~leakage_pw_per_gate ~density_kgates_per_mm2 ~sram_bit_area_um2 =
  {
    name;
    feature_nm;
    year;
    vdd = Voltage.volts vdd_v;
    vth = Voltage.volts vth_v;
    gate_energy = Energy.femtojoules gate_energy_fj;
    gate_delay_ps;
    leakage_per_gate = Power.watts (leakage_pw_per_gate *. 1e-12);
    density_kgates_per_mm2;
    sram_bit_area_um2;
  }

(* Leakage per gate grows by roughly an order of magnitude per generation
   below 180 nm as threshold voltages drop — the "leakage explosion" that is
   one of the keynote's headline IC-design challenges. *)
let n350 =
  make ~name:"350nm" ~feature_nm:350.0 ~year:1997 ~vdd_v:3.3 ~vth_v:0.60 ~gate_energy_fj:60.0
    ~gate_delay_ps:90.0 ~leakage_pw_per_gate:0.2 ~density_kgates_per_mm2:20.0
    ~sram_bit_area_um2:15.0

let n250 =
  make ~name:"250nm" ~feature_nm:250.0 ~year:1999 ~vdd_v:2.5 ~vth_v:0.50 ~gate_energy_fj:28.0
    ~gate_delay_ps:60.0 ~leakage_pw_per_gate:0.8 ~density_kgates_per_mm2:40.0
    ~sram_bit_area_um2:7.0

let n180 =
  make ~name:"180nm" ~feature_nm:180.0 ~year:2001 ~vdd_v:1.8 ~vth_v:0.45 ~gate_energy_fj:12.0
    ~gate_delay_ps:40.0 ~leakage_pw_per_gate:4.0 ~density_kgates_per_mm2:80.0
    ~sram_bit_area_um2:4.0

let n130 =
  make ~name:"130nm" ~feature_nm:130.0 ~year:2003 ~vdd_v:1.2 ~vth_v:0.40 ~gate_energy_fj:5.0
    ~gate_delay_ps:27.0 ~leakage_pw_per_gate:40.0 ~density_kgates_per_mm2:160.0
    ~sram_bit_area_um2:2.0

let n90 =
  make ~name:"90nm" ~feature_nm:90.0 ~year:2005 ~vdd_v:1.0 ~vth_v:0.35 ~gate_energy_fj:2.2
    ~gate_delay_ps:19.0 ~leakage_pw_per_gate:300.0 ~density_kgates_per_mm2:320.0
    ~sram_bit_area_um2:1.0

let n65 =
  make ~name:"65nm" ~feature_nm:65.0 ~year:2007 ~vdd_v:0.9 ~vth_v:0.32 ~gate_energy_fj:1.1
    ~gate_delay_ps:14.0 ~leakage_pw_per_gate:900.0 ~density_kgates_per_mm2:640.0
    ~sram_bit_area_um2:0.5

(** Catalogue, oldest node first. *)
let catalogue = [ n350; n250; n180; n130; n90; n65 ]

(** [find name] looks a node up by its conventional name. *)
let find name = List.find_opt (fun n -> n.name = name) catalogue

(** The node contemporary with the keynote (2003). *)
let contemporary = n130

(** [max_frequency node] — rough upper clock bound for synthesized logic on
    [node]: 25 FO4 gate delays per cycle, a common pipeline depth
    assumption. *)
let max_frequency node =
  let cycle_ps = 25.0 *. node.gate_delay_ps in
  Frequency.hertz (1e12 /. cycle_ps)

(** [pp] prints the node name. *)
let pp fmt node = Format.pp_print_string fmt node.name
