(** Technology scaling laws.

    Ideal (Dennard) scaling: shrinking feature size by factor [s > 1]
    divides gate delay by [s], multiplies density by [s^2], and divides
    switching energy by [s^3] (C and V each scale by [1/s]).  Below 130 nm
    the V-scaling slows and leakage rises, so the toolkit also offers a
    leakage-aware projection and an empirical fit over the catalogue.  The
    difference between the two projections *is* one of the keynote's design
    challenges (experiment E7 / ablation A2). *)

open Amb_units

type regime =
  | Dennard  (** ideal constant-field scaling *)
  | Leakage_aware
      (** voltage scaling saturates and leakage grows ~8x per
                       generation — post-130 nm reality *)

(** [factor ~from_nm ~to_nm] — the linear shrink factor [s]. *)
let factor ~from_nm ~to_nm =
  if from_nm <= 0.0 || to_nm <= 0.0 then invalid_arg "Scaling.factor: non-positive feature size"
  else from_nm /. to_nm

(** [scale_energy regime e s] — switching energy after shrinking by [s]. *)
let scale_energy regime e s =
  match regime with
  | Dennard -> Energy.scale (1.0 /. (s ** 3.0)) e
  (* Voltage saturates: only C shrinks, and only ~1/s^2 of the ideal
     energy gain is realised. *)
  | Leakage_aware -> Energy.scale (1.0 /. (s ** 2.0)) e

(** [scale_delay e s] — gate delay after shrinking by [s] (both regimes). *)
let scale_delay delay_ps s = delay_ps /. s

(** [scale_leakage regime p s] — leakage per gate after shrinking by [s].
    One generation is [s = sqrt 2]; leakage grows ~8x per generation in the
    leakage-aware regime, stays flat under ideal scaling. *)
let scale_leakage regime p s =
  match regime with
  | Dennard -> p
  | Leakage_aware ->
    let generations = Float.log s /. Float.log (Float.sqrt 2.0) in
    Power.scale (8.0 ** generations) p

(** [project regime node ~to_nm] — a synthetic process node extrapolated
    from [node] under the given scaling [regime].  Density always scales as
    [s^2]. *)
let project regime (node : Process_node.t) ~to_nm =
  let s = factor ~from_nm:node.feature_nm ~to_nm in
  {
    node with
    Process_node.name = Printf.sprintf "%.0fnm(proj)" to_nm;
    feature_nm = to_nm;
    gate_energy = scale_energy regime node.gate_energy s;
    gate_delay_ps = scale_delay node.gate_delay_ps s;
    leakage_per_gate = scale_leakage regime node.leakage_per_gate s;
    density_kgates_per_mm2 = node.density_kgates_per_mm2 *. s *. s;
    sram_bit_area_um2 = node.sram_bit_area_um2 /. (s *. s);
  }

(** [efficiency_doubling_period nodes] — least-squares fit of
    log2(1 / gate_energy) against year over a node list, returned as the
    time it takes for energy efficiency to double.  On the built-in
    catalogue this lands near the folklore "Gene's law" figure of ~18
    months. *)
let efficiency_doubling_period nodes =
  match nodes with
  | [] | [ _ ] -> invalid_arg "Scaling.efficiency_doubling_period: need >= 2 nodes"
  | _ ->
    let points =
      List.map
        (fun (n : Process_node.t) ->
          let eff = 1.0 /. Energy.to_joules n.Process_node.gate_energy in
          (Float.of_int n.Process_node.year, Float.log eff /. Float.log 2.0))
        nodes
    in
    let n = Float.of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
    if slope <= 0.0 then Time_span.forever else Time_span.years (1.0 /. slope)

(** [years_to_close ~doubling_period ~gap] — time for technology scaling to
    close an efficiency [gap] (required/available ratio > 1), the
    gap-closing metric of experiment E5.  Zero when the gap is already
    closed. *)
let years_to_close ~doubling_period ~gap =
  if gap <= 1.0 then Time_span.zero
  else Time_span.scale (Float.log gap /. Float.log 2.0) doubling_period
