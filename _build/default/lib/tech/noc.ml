(** On-chip interconnect energy: shared bus vs network-on-chip.

    The keynote's Watt-node grows into a multiprocessor SoC; how its cores
    talk dominates both energy and scalability (the DATE 2003 NoC track's
    argument).  Model: a shared bus spans the whole die, so every transfer
    charges the full global wire, and all cores share one transaction at
    a time; a 2D-mesh NoC charges per hop (short link + router), and
    bisection bandwidth grows with the mesh.  Experiment E15 locates the
    crossover. *)

open Amb_units

type t = {
  node : Process_node.t;
  cores : int;
  die_edge_mm : float;
  wire_energy_pj_per_bit_mm : float;  (** global-wire switching energy *)
  router_energy_pj_per_bit : float;  (** per-router traversal energy *)
  bus_frequency : Frequency.t;
  bus_width_bits : float;
  link_frequency : Frequency.t;
  link_width_bits : float;
}

let make ?(wire_energy_pj_per_bit_mm = 0.25) ?(router_energy_pj_per_bit = 0.4)
    ?(bus_frequency = Frequency.megahertz 200.0) ?(bus_width_bits = 64.0)
    ?(link_frequency = Frequency.megahertz 400.0) ?(link_width_bits = 32.0) ~node ~cores
    ~die_edge_mm () =
  if cores < 1 then invalid_arg "Noc.make: need at least one core";
  if die_edge_mm <= 0.0 then invalid_arg "Noc.make: non-positive die edge";
  {
    node;
    cores;
    die_edge_mm;
    wire_energy_pj_per_bit_mm;
    router_energy_pj_per_bit;
    bus_frequency;
    bus_width_bits;
    link_frequency;
    link_width_bits;
  }

let mesh_side t = int_of_float (Float.ceil (Float.sqrt (Float.of_int t.cores)))

(** [mean_hops t] — expected Manhattan distance between two uniformly
    random mesh tiles: E|x1-x2| on 0..k-1 is (k^2-1)/(3k), summed over the
    two axes. *)
let mean_hops t =
  let k = Float.of_int (mesh_side t) in
  Float.max 1.0 (2.0 *. ((k *. k) -. 1.0) /. (3.0 *. k))

(** [bus_energy_per_bit t] — every transfer drives the full-die global
    bus. *)
let bus_energy_per_bit t =
  Energy.picojoules (t.wire_energy_pj_per_bit_mm *. t.die_edge_mm)

(** [noc_energy_per_bit t] — per-hop link (one tile pitch) plus router
    traversal, times the mean hop count (+1 router for injection). *)
let noc_energy_per_bit t =
  let tile_pitch = t.die_edge_mm /. Float.of_int (mesh_side t) in
  let hops = mean_hops t in
  let per_hop = (t.wire_energy_pj_per_bit_mm *. tile_pitch) +. t.router_energy_pj_per_bit in
  Energy.picojoules ((hops *. per_hop) +. t.router_energy_pj_per_bit)

(** [bus_capacity t] — one transaction at a time, shared by everyone. *)
let bus_capacity t =
  Data_rate.bits_per_second (Frequency.to_hertz t.bus_frequency *. t.bus_width_bits)

(** [noc_capacity t] — sustained uniform-traffic throughput: each
    delivered bit occupies [mean_hops] links, so the aggregate is bounded
    by total link bandwidth / mean hops (~6 * side * link_bw for a k x k
    mesh — it grows with the mesh, which is the point). *)
let noc_capacity t =
  let k = Float.of_int (mesh_side t) in
  let link_bw = Frequency.to_hertz t.link_frequency *. t.link_width_bits in
  let directed_links = Float.max 1.0 (4.0 *. k *. (k -. 1.0)) in
  Data_rate.bits_per_second (directed_links *. link_bw /. mean_hops t)

(** [saturates t ~demand_per_core] — whether aggregate traffic exceeds an
    interconnect's capacity. *)
type verdict = { energy_per_bit : Energy.t; capacity : Data_rate.t; saturated : bool }

let evaluate_bus t ~demand_per_core =
  let aggregate = demand_per_core *. Float.of_int t.cores in
  let cap = bus_capacity t in
  { energy_per_bit = bus_energy_per_bit t; capacity = cap;
    saturated = aggregate > Data_rate.to_bits_per_second cap }

let evaluate_noc t ~demand_per_core =
  let aggregate = demand_per_core *. Float.of_int t.cores in
  let cap = noc_capacity t in
  { energy_per_bit = noc_energy_per_bit t; capacity = cap;
    saturated = aggregate > Data_rate.to_bits_per_second cap }

(** [communication_power t ~demand_per_core ~use_noc] — aggregate
    interconnect power when each core moves [demand_per_core] bits/s. *)
let communication_power t ~demand_per_core ~use_noc =
  let v = if use_noc then evaluate_noc t ~demand_per_core else evaluate_bus t ~demand_per_core in
  let aggregate = demand_per_core *. Float.of_int t.cores in
  Power.watts (aggregate *. Energy.to_joules v.energy_per_bit)

(** [crossover_cores ~node ~die_edge_mm ~demand_per_core] — the smallest
    core count at which the bus saturates while the NoC does not: the
    point where the MPSoC must adopt a network. *)
let crossover_cores ~node ~die_edge_mm ~demand_per_core =
  let rec search cores =
    if cores > 1024 then None
    else
      let t = make ~node ~cores ~die_edge_mm () in
      let bus = evaluate_bus t ~demand_per_core in
      let noc = evaluate_noc t ~demand_per_core in
      if bus.saturated && not noc.saturated then Some cores else search (cores + 1)
  in
  search 1
