(** System-on-chip power/area roll-up.

    A SoC is a clocked collection of logic blocks and memory macros plus an
    off-chip memory traffic figure.  This is the model behind experiment E7:
    re-target the same media SoC across process nodes and watch dynamic
    power fall while leakage and memory-traffic power take over. *)

open Amb_units

type t = {
  name : string;
  node : Process_node.t;
  clock : Frequency.t;
  logic_blocks : Logic.block list;
  memories : Memory.t list;
  offchip_accesses_per_s : float;  (** 32-bit off-chip accesses per second *)
}

let make ~name ~node ~clock ~logic_blocks ~memories ~offchip_accesses_per_s =
  if offchip_accesses_per_s < 0.0 then invalid_arg "Soc.make: negative off-chip rate";
  { name; node; clock; logic_blocks; memories; offchip_accesses_per_s }

let dynamic_power soc =
  Power.sum (List.map (fun b -> Logic.dynamic_power soc.node b soc.clock) soc.logic_blocks)

let leakage_power soc =
  let logic = Power.sum (List.map (Logic.leakage_power soc.node) soc.logic_blocks) in
  let mem = Power.sum (List.map Memory.leakage_power soc.memories) in
  Power.add logic mem

(* On-chip memories are accessed once per cycle per macro at the given
   activity; we fold that into the macro list by charging each macro at the
   SoC clock scaled by a fixed 0.2 access activity. *)
let memory_access_activity = 0.2

let onchip_memory_power soc =
  let rate = Frequency.scale memory_access_activity soc.clock in
  Power.sum (List.map (fun m -> Memory.access_power m rate) soc.memories)

let offchip_power soc =
  Power.watts (soc.offchip_accesses_per_s *. Energy.to_joules (Energy.nanojoules Memory.dram_access_energy_nj))

let total_power soc =
  Power.sum [ dynamic_power soc; leakage_power soc; onchip_memory_power soc; offchip_power soc ]

type breakdown = {
  dynamic : Power.t;
  leakage : Power.t;
  onchip_memory : Power.t;
  offchip_memory : Power.t;
  total : Power.t;
}

let breakdown soc =
  {
    dynamic = dynamic_power soc;
    leakage = leakage_power soc;
    onchip_memory = onchip_memory_power soc;
    offchip_memory = offchip_power soc;
    total = total_power soc;
  }

let area soc =
  let logic = Area.sum (List.map (Logic.area soc.node) soc.logic_blocks) in
  let mem = Area.sum (List.map Memory.area soc.memories) in
  Area.add logic mem

(** [power_density soc] in W/cm^2 — the thermal-limit metric of CS-C. *)
let power_density soc =
  let a = Area.to_square_centimetres (area soc) in
  if a <= 0.0 then Float.infinity else Power.to_watts (total_power soc) /. a

(** [retarget soc node] — the same design ported to another process node,
    keeping clock and architecture constant. *)
let retarget soc node =
  let memories = List.map (fun m -> { m with Memory.node }) soc.memories in
  { soc with node; memories }
