(** Technology roadmap: from the node catalogue to a year-indexed
    projection of silicon capability.

    The keynote frames ambient intelligence as a ten-year vision; this
    module answers "what does silicon offer in year Y?" by interpolating
    the catalogue and extrapolating beyond it with the leakage-aware
    scaling regime — so the gap analysis can be phrased as a timeline
    (experiment E23). *)

open Amb_units

(** [node_for_year year] — the newest catalogue node in production by
    [year]; the oldest node for years before the catalogue starts. *)
let node_for_year year =
  let rec newest best = function
    | [] -> best
    | (n : Process_node.t) :: rest ->
      if n.Process_node.year <= year then newest n rest else best
  in
  match Process_node.catalogue with
  | [] -> invalid_arg "Roadmap.node_for_year: empty catalogue"
  | first :: rest -> newest first rest

(** [projected_node year] — a node for [year], extrapolated beyond the
    catalogue with leakage-aware scaling at one generation (x sqrt 2
    shrink) per two years from the last catalogue entry. *)
let projected_node year =
  let last = List.nth Process_node.catalogue (List.length Process_node.catalogue - 1) in
  if year <= last.Process_node.year then node_for_year year
  else
    let generations = Float.of_int (year - last.Process_node.year) /. 2.0 in
    let shrink = Float.sqrt 2.0 ** generations in
    let to_nm = last.Process_node.feature_nm /. shrink in
    { (Scaling.project Scaling.Leakage_aware last ~to_nm) with Process_node.year = year }

(** [efficiency_in year ~reference_ops_per_joule ~reference_year] — the
    ops/J a design achieving [reference_ops_per_joule] in
    [reference_year] reaches in [year], riding gate-energy scaling
    alone. *)
let efficiency_in year ~reference_ops_per_joule ~reference_year =
  let e_ref = (projected_node reference_year).Process_node.gate_energy in
  let e_now = (projected_node year).Process_node.gate_energy in
  reference_ops_per_joule *. Energy.ratio e_ref e_now

(** [year_when ~required_ops_per_joule ~reference_ops_per_joule
    ~reference_year] — the first year scaling alone delivers the required
    efficiency; [None] when not reached by 2020. *)
let year_when ~required_ops_per_joule ~reference_ops_per_joule ~reference_year =
  let rec search year =
    if year > 2020 then None
    else if
      efficiency_in year ~reference_ops_per_joule ~reference_year >= required_ops_per_joule
    then Some year
    else search (year + 1)
  in
  search reference_year

(** One row of the vision timeline. *)
type milestone = {
  year : int;
  node : Process_node.t;
  gate_energy : Energy.t;
  relative_efficiency : float;  (** vs the 2003 node *)
}

(** [timeline ~from_year ~to_year] — year-by-two-years milestones. *)
let timeline ~from_year ~to_year =
  if to_year < from_year then invalid_arg "Roadmap.timeline: empty range";
  let base = (projected_node 2003).Process_node.gate_energy in
  let rec build year acc =
    if year > to_year then List.rev acc
    else
      let node = projected_node year in
      let m =
        {
          year;
          node;
          gate_energy = node.Process_node.gate_energy;
          relative_efficiency = Energy.ratio base node.Process_node.gate_energy;
        }
      in
      build (year + 2) (m :: acc)
  in
  build from_year []
