(** Digital-logic power on a given process node:
    P = alpha * N * E_gate * f + N * P_leak. *)

open Amb_units

type block = {
  name : string;
  gates : float;  (** equivalent 2-input NAND gates *)
  activity : float;  (** fraction of gates switching per cycle, 0..1 *)
}

val block : name:string -> gates:float -> activity:float -> block
(** Raises [Invalid_argument] on negative gates or activity outside
    [0,1]. *)

val dynamic_power : Process_node.t -> block -> Frequency.t -> Power.t
val leakage_power : Process_node.t -> block -> Power.t
val total_power : Process_node.t -> block -> Frequency.t -> Power.t
val energy_per_cycle : Process_node.t -> block -> Energy.t
val area : Process_node.t -> block -> Area.t

val leakage_fraction : Process_node.t -> block -> Frequency.t -> float
(** Share of leakage in the total power — the quantity whose growth
    across nodes experiment E7 tracks. *)

val frequency_for_power : Process_node.t -> block -> Power.t -> Frequency.t option
(** Highest clock within a power budget; [None] if leakage alone exceeds
    it. *)
