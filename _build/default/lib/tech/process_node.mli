(** CMOS process-node parameters.

    The catalogue spans the technology generations surrounding the DATE
    2003 keynote (0.35 um down to 65 nm).  Absolute values are published-
    order-of-magnitude figures; the analyses in [Amb_core] rely on the
    trends across nodes, not the absolutes (DESIGN.md, "Substitutions"). *)

open Amb_units

type t = {
  name : string;  (** conventional node name, e.g. ["180nm"] *)
  feature_nm : float;  (** drawn feature size in nanometres *)
  year : int;  (** approximate year of volume production *)
  vdd : Voltage.t;  (** nominal supply *)
  vth : Voltage.t;  (** nominal threshold *)
  gate_energy : Energy.t;  (** dynamic energy per average gate switch *)
  gate_delay_ps : float;  (** FO4-loaded gate delay, picoseconds *)
  leakage_per_gate : Power.t;  (** standby leakage per gate at 25 C *)
  density_kgates_per_mm2 : float;  (** logic density, kgates / mm^2 *)
  sram_bit_area_um2 : float;  (** 6T SRAM cell area, um^2 *)
}

val make :
  name:string ->
  feature_nm:float ->
  year:int ->
  vdd_v:float ->
  vth_v:float ->
  gate_energy_fj:float ->
  gate_delay_ps:float ->
  leakage_pw_per_gate:float ->
  density_kgates_per_mm2:float ->
  sram_bit_area_um2:float ->
  t

val n350 : t
val n250 : t
val n180 : t
val n130 : t
val n90 : t
val n65 : t

val catalogue : t list
(** All built-in nodes, oldest first. *)

val find : string -> t option
(** Look a node up by its conventional name. *)

val contemporary : t
(** The node contemporary with the keynote (2003): 130 nm. *)

val max_frequency : t -> Frequency.t
(** Rough upper clock bound for synthesized logic: 25 FO4 delays per
    cycle. *)

val pp : Format.formatter -> t -> unit
