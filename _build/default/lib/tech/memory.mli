(** Embedded-memory energy: sqrt-size SRAM access law anchored on a
    32-kbit macro; off-chip DRAM at a roughly node-independent nJ-scale
    cost (I/O dominates).  The reason the keynote's media node is
    dominated by memory-traffic power. *)

open Amb_units

type kind =
  | Sram  (** on-chip embedded SRAM *)
  | Dram_offchip  (** external (S)DRAM including I/O energy *)

type t = {
  name : string;
  kind : kind;
  bits : float;
  node : Process_node.t;
}

val make : name:string -> kind:kind -> bits:float -> node:Process_node.t -> t
(** Raises [Invalid_argument] on non-positive size. *)

val sram_anchor_bits : float
val sram_anchor_energy_pj_130 : float
val dram_access_energy_nj : float

val access_energy : t -> Energy.t
(** Energy of one 32-bit word access. *)

val access_power : t -> Frequency.t -> Power.t
(** Average power at a given access rate. *)

val leakage_power : t -> Power.t
(** SRAM standby leakage; zero for off-chip DRAM (charged to the board). *)

val area : t -> Area.t
(** Silicon area of an on-chip macro; zero for off-chip. *)
