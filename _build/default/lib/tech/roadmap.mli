(** Technology roadmap: year-indexed silicon capability, interpolating the
    node catalogue and extrapolating beyond it with leakage-aware scaling
    (one generation per two years) — the timeline view of the gap
    analysis (experiment E23). *)

open Amb_units

val node_for_year : int -> Process_node.t
(** The newest catalogue node in production by a year. *)

val projected_node : int -> Process_node.t
(** A (possibly extrapolated) node for a year. *)

val efficiency_in : int -> reference_ops_per_joule:float -> reference_year:int -> float
(** The ops/J a reference design reaches in a year, riding gate-energy
    scaling alone. *)

val year_when :
  required_ops_per_joule:float -> reference_ops_per_joule:float -> reference_year:int -> int option
(** First year scaling alone delivers a required efficiency; [None] when
    not reached by 2020. *)

type milestone = {
  year : int;
  node : Process_node.t;
  gate_energy : Energy.t;
  relative_efficiency : float;  (** vs the 2003 node *)
}

val timeline : from_year:int -> to_year:int -> milestone list
(** Milestones every two years; raises [Invalid_argument] on an empty
    range. *)
