(** System-on-chip power/area roll-up: clocked logic blocks + memory
    macros + off-chip traffic.  The model behind experiment E7. *)

open Amb_units

type t = {
  name : string;
  node : Process_node.t;
  clock : Frequency.t;
  logic_blocks : Logic.block list;
  memories : Memory.t list;
  offchip_accesses_per_s : float;  (** 32-bit off-chip accesses per second *)
}

val make :
  name:string ->
  node:Process_node.t ->
  clock:Frequency.t ->
  logic_blocks:Logic.block list ->
  memories:Memory.t list ->
  offchip_accesses_per_s:float ->
  t

val memory_access_activity : float
(** Fraction of SoC cycles each on-chip macro is accessed. *)

val dynamic_power : t -> Power.t
val leakage_power : t -> Power.t
val onchip_memory_power : t -> Power.t
val offchip_power : t -> Power.t
val total_power : t -> Power.t

type breakdown = {
  dynamic : Power.t;
  leakage : Power.t;
  onchip_memory : Power.t;
  offchip_memory : Power.t;
  total : Power.t;
}

val breakdown : t -> breakdown
val area : t -> Area.t

val power_density : t -> float
(** W/cm^2 — the thermal-limit metric of case study C. *)

val retarget : t -> Process_node.t -> t
(** The same design ported to another node, architecture unchanged. *)
