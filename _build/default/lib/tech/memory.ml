(** Embedded-memory energy models.

    Access energy of an SRAM grows with macro size (longer bit/word lines);
    we use the common square-root law E(bits) = e0 * sqrt(bits / b0)
    anchored on a 32-kbit macro.  Off-chip DRAM access is two to three
    orders of magnitude more expensive — the reason the keynote's media
    node (CS-C) is dominated by memory-traffic power. *)

open Amb_units

type kind =
  | Sram  (** on-chip embedded SRAM *)
  | Dram_offchip  (** external (S)DRAM including I/O energy *)

type t = {
  name : string;
  kind : kind;
  bits : float;
  node : Process_node.t;
}

let make ~name ~kind ~bits ~node =
  if bits <= 0.0 then invalid_arg "Memory.make: non-positive size";
  { name; kind; bits; node }

(* Anchors: ~10 pJ per 32-bit read from a 32-kbit SRAM at 130 nm; ~4 nJ per
   32-bit off-chip DRAM access (pins + DLL + core), roughly node
   independent because I/O dominates. *)
let sram_anchor_bits = 32.0 *. 1024.0
let sram_anchor_energy_pj_130 = 10.0
let dram_access_energy_nj = 4.0

(** [access_energy mem] — energy of one 32-bit word access. *)
let access_energy mem =
  match mem.kind with
  | Dram_offchip -> Energy.nanojoules dram_access_energy_nj
  | Sram ->
    (* Scale the 130 nm anchor with the node's gate energy: bitline swings
       track the same C*V^2 product as logic. *)
    let node_scale =
      Energy.ratio mem.node.Process_node.gate_energy Process_node.n130.Process_node.gate_energy
    in
    let size_scale = Float.sqrt (mem.bits /. sram_anchor_bits) in
    Energy.picojoules (sram_anchor_energy_pj_130 *. node_scale *. size_scale)

(** [access_power mem rate] — average power at [rate] accesses/s. *)
let access_power mem rate =
  Power.watts (Energy.to_joules (access_energy mem) *. Frequency.to_hertz rate)

(** [leakage_power mem] — SRAM standby leakage (6 transistors per bit,
    scaled from the node's per-gate figure at 4 transistors per gate);
    zero for off-chip DRAM, whose standby power we charge to the board,
    not to the SoC. *)
let leakage_power mem =
  match mem.kind with
  | Dram_offchip -> Power.zero
  | Sram -> Power.scale (mem.bits *. 6.0 /. 4.0) mem.node.Process_node.leakage_per_gate

(** [area mem] — silicon area of an on-chip macro; zero for off-chip. *)
let area mem =
  match mem.kind with
  | Dram_offchip -> Area.zero
  | Sram ->
    Area.square_millimetres (mem.bits *. mem.node.Process_node.sram_bit_area_um2 /. 1e6)
