(** Technology scaling laws: ideal (Dennard) constant-field scaling and a
    leakage-aware variant reflecting the post-130 nm slowdown.  The
    difference between the two projections is one of the keynote's design
    challenges (experiment E7 / ablation A2). *)

open Amb_units

type regime =
  | Dennard  (** ideal constant-field scaling *)
  | Leakage_aware
      (** voltage scaling saturates and leakage grows ~8x per
          generation — post-130 nm reality *)

val factor : from_nm:float -> to_nm:float -> float
(** [factor ~from_nm ~to_nm] — linear shrink factor [s]; raises
    [Invalid_argument] on non-positive sizes. *)

val scale_energy : regime -> Energy.t -> float -> Energy.t
(** Switching energy after shrinking by [s]: [1/s^3] under {!Dennard},
    [1/s^2] under {!Leakage_aware}. *)

val scale_delay : float -> float -> float
(** [scale_delay delay_ps s] — gate delay after shrinking by [s]. *)

val scale_leakage : regime -> Power.t -> float -> Power.t
(** Leakage per gate after shrinking by [s]: flat under {!Dennard}, ~8x
    per generation ([s = sqrt 2]) under {!Leakage_aware}. *)

val project : regime -> Process_node.t -> to_nm:float -> Process_node.t
(** A synthetic node extrapolated from an existing one under the given
    regime; density always scales as [s^2]. *)

val efficiency_doubling_period : Process_node.t list -> Time_span.t
(** Least-squares fit of log2(1 / gate_energy) against year: the time for
    energy efficiency to double (Gene's-law analogue).  Raises
    [Invalid_argument] with fewer than two nodes. *)

val years_to_close : doubling_period:Time_span.t -> gap:float -> Time_span.t
(** Time for scaling alone to close an efficiency [gap] (ratio > 1); zero
    when already closed. *)
