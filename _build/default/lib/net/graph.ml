(** Weighted directed graphs over integer node ids.

    Small, dependency-free graph kernel: adjacency lists, Dijkstra
    shortest paths, BFS hop counts and connectivity — everything the
    routing layer needs. *)

type edge = { dst : int; weight : float }

type t = {
  node_count : int;
  adjacency : edge list array;
}

let create node_count =
  if node_count < 0 then invalid_arg "Graph.create: negative node count";
  { node_count; adjacency = Array.make (Stdlib.max node_count 1) [] }

let node_count g = g.node_count

let check_node g v =
  if v < 0 || v >= g.node_count then
    invalid_arg (Printf.sprintf "Graph: node %d outside 0..%d" v (g.node_count - 1))

(** [add_edge g ~src ~dst ~weight] — directed edge; negative weights are
    rejected (Dijkstra). *)
let add_edge g ~src ~dst ~weight =
  check_node g src;
  check_node g dst;
  if weight < 0.0 then invalid_arg "Graph.add_edge: negative weight";
  g.adjacency.(src) <- { dst; weight } :: g.adjacency.(src)

(** [add_undirected g a b ~weight] — edge in both directions. *)
let add_undirected g a b ~weight =
  add_edge g ~src:a ~dst:b ~weight;
  add_edge g ~src:b ~dst:a ~weight

let neighbors g v =
  check_node g v;
  g.adjacency.(v)

let edge_count g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.adjacency

(** [dijkstra g ~src] — arrays of (distance, predecessor) from [src];
    unreachable nodes have infinite distance and predecessor -1. *)
let dijkstra g ~src =
  check_node g src;
  let dist = Array.make g.node_count Float.infinity in
  let prev = Array.make g.node_count (-1) in
  let visited = Array.make g.node_count false in
  dist.(src) <- 0.0;
  (* A simple heap of (distance, node); stale entries are skipped. *)
  let heap = Amb_sim.Event_queue.create () in
  Amb_sim.Event_queue.push heap ~time:0.0 src;
  let rec loop () =
    match Amb_sim.Event_queue.pop heap with
    | None -> ()
    | Some (d, u) ->
      if (not visited.(u)) && d <= dist.(u) then begin
        visited.(u) <- true;
        let relax { dst; weight } =
          let candidate = dist.(u) +. weight in
          if candidate < dist.(dst) then begin
            dist.(dst) <- candidate;
            prev.(dst) <- u;
            Amb_sim.Event_queue.push heap ~time:candidate dst
          end
        in
        List.iter relax g.adjacency.(u)
      end;
      loop ()
  in
  loop ();
  (dist, prev)

(** [shortest_path g ~src ~dst] — node list from [src] to [dst] inclusive,
    or [None] when unreachable. *)
let shortest_path g ~src ~dst =
  check_node g dst;
  let dist, prev = dijkstra g ~src in
  if dist.(dst) = Float.infinity then None
  else
    let rec walk v acc = if v = src then src :: acc else walk prev.(v) (v :: acc) in
    Some (walk dst [])

(** [path_cost g path] — sum of edge weights along [path]; raises
    [Not_found] if an edge is missing. *)
let path_cost g path =
  let edge_weight u v =
    match List.find_opt (fun e -> e.dst = v) g.adjacency.(u) with
    | Some e -> e.weight
    | None -> raise Not_found
  in
  let rec walk = function
    | [] | [ _ ] -> 0.0
    | u :: (v :: _ as rest) -> edge_weight u v +. walk rest
  in
  walk path

(** [hops g ~src] — BFS hop counts from [src] (edges treated as unit
    weight); -1 for unreachable nodes. *)
let hops g ~src =
  check_node g src;
  let dist = Array.make g.node_count (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let visit { dst; _ } =
      if dist.(dst) < 0 then begin
        dist.(dst) <- dist.(u) + 1;
        Queue.push dst q
      end
    in
    List.iter visit g.adjacency.(u)
  done;
  dist

(** [is_connected g] — every node reachable from node 0 (undirected
    usage). *)
let is_connected g =
  if g.node_count = 0 then true
  else
    let dist = hops g ~src:0 in
    Array.for_all (fun d -> d >= 0) dist
