lib/net/routing.ml: Amb_circuit Amb_radio Amb_units Energy Float Graph Link_budget Packet Topology
