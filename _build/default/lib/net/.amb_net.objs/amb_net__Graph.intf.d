lib/net/graph.mli:
