lib/net/topology.ml: Amb_sim Array Float Graph List Stdlib
