lib/net/graph.ml: Amb_sim Array Float List Printf Queue Stdlib
