lib/net/net_sim.ml: Amb_sim Amb_units Array Energy Engine Float Graph Option Rng Routing Time_span Topology
