lib/net/cluster.mli: Amb_units Energy
