lib/net/cluster.ml: Amb_units Energy Float
