lib/net/topology.mli: Amb_sim Graph
