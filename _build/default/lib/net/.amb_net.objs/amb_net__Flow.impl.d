lib/net/flow.ml: Amb_units Array Energy Float Graph Routing Topology
