lib/net/flow.mli: Amb_units Energy Routing
