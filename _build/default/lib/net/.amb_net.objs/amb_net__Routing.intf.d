lib/net/routing.mli: Amb_radio Amb_units Energy Graph Link_budget Packet Topology
