lib/net/net_sim.mli: Amb_units Energy Routing Time_span
