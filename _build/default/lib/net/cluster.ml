(** Cluster-based data collection (LEACH-style analysis).

    A fraction [p] of nodes act as cluster heads each round: members send
    one short hop to their head, heads aggregate and send one long hop to
    the sink.  The analytic model exposes the classic optimum head
    fraction and the energy benefit of aggregation. *)

open Amb_units

type t = {
  nodes : int;
  field_m : float;  (** square field edge length *)
  sink_distance_m : float;  (** average head-to-sink distance *)
  e_elec_per_bit : Energy.t;  (** electronics energy per bit, TX or RX *)
  e_amp_j_per_bit_m2 : float;  (** PA energy per bit per m^2 (free-space model) *)
  aggregation_ratio : float;  (** head output bits / total member input bits *)
  bits_per_round : float;  (** bits produced per node per round *)
}

let make ?(aggregation_ratio = 0.1) ~nodes ~field_m ~sink_distance_m ~e_elec_nj_per_bit
    ~e_amp_pj_per_bit_m2 ~bits_per_round () =
  if nodes <= 1 then invalid_arg "Cluster.make: need at least two nodes";
  if aggregation_ratio < 0.0 || aggregation_ratio > 1.0 then
    invalid_arg "Cluster.make: aggregation ratio outside [0,1]";
  {
    nodes;
    field_m;
    sink_distance_m;
    e_elec_per_bit = Energy.nanojoules e_elec_nj_per_bit;
    e_amp_j_per_bit_m2 = e_amp_pj_per_bit_m2 *. 1e-12;
    aggregation_ratio;
    bits_per_round;
  }

(* Expected squared member-to-head distance for k heads uniformly covering
   a square field of side M: M^2 / (2 pi k)  (the standard LEACH result). *)
let expected_member_distance_sq t ~head_fraction =
  let k = Float.max 1.0 (head_fraction *. Float.of_int t.nodes) in
  t.field_m *. t.field_m /. (2.0 *. Float.pi *. k)

let tx_energy t ~bits ~distance_sq =
  Energy.add (Energy.scale bits t.e_elec_per_bit)
    (Energy.joules (bits *. t.e_amp_j_per_bit_m2 *. distance_sq))

let rx_energy t ~bits = Energy.scale bits t.e_elec_per_bit

(** [round_energy t ~head_fraction] — expected total network energy per
    collection round at the given head fraction. *)
let round_energy t ~head_fraction =
  if head_fraction <= 0.0 || head_fraction > 1.0 then
    invalid_arg "Cluster.round_energy: head fraction outside (0,1]";
  let n = Float.of_int t.nodes in
  let heads = Float.max 1.0 (head_fraction *. n) in
  let members = n -. heads in
  let members_per_head = members /. heads in
  let d2_member = expected_member_distance_sq t ~head_fraction in
  (* Members transmit one short hop. *)
  let e_members = Energy.scale members (tx_energy t ~bits:t.bits_per_round ~distance_sq:d2_member) in
  (* Heads receive all member traffic, aggregate, and forward to the sink.
     Aggregation is LEACH-style: the head emits one fixed-size composite
     frame plus a residual [aggregation_ratio] share of the member input
     (ratio 0 = perfect aggregation, 1 = pure relaying). *)
  let e_head_rx =
    Energy.scale heads (rx_energy t ~bits:(members_per_head *. t.bits_per_round))
  in
  let aggregated_bits =
    t.bits_per_round +. (t.aggregation_ratio *. members_per_head *. t.bits_per_round)
  in
  let d2_sink = t.sink_distance_m *. t.sink_distance_m in
  let e_head_tx = Energy.scale heads (tx_energy t ~bits:aggregated_bits ~distance_sq:d2_sink) in
  Energy.sum [ e_members; e_head_rx; e_head_tx ]

(** [direct_energy t] — every node transmits straight to the sink (no
    clustering): the baseline the keynote's network argument beats. *)
let direct_energy t =
  let d2 = t.sink_distance_m *. t.sink_distance_m in
  Energy.scale (Float.of_int t.nodes) (tx_energy t ~bits:t.bits_per_round ~distance_sq:d2)

(** [optimal_head_fraction t] — numeric minimiser of {!round_energy} over
    (0, 0.5]. *)
let optimal_head_fraction t =
  let energy_at p = Energy.to_joules (round_energy t ~head_fraction:p) in
  let phi = (Float.sqrt 5.0 -. 1.0) /. 2.0 in
  let rec golden lo hi n =
    if n = 0 then 0.5 *. (lo +. hi)
    else
      let a = hi -. ((hi -. lo) *. phi) and b = lo +. ((hi -. lo) *. phi) in
      if energy_at a < energy_at b then golden lo b (n - 1) else golden a hi (n - 1)
  in
  golden 0.005 0.5 80
