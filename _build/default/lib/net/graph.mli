(** Weighted directed graphs over integer node ids: adjacency lists,
    Dijkstra shortest paths, BFS hop counts and connectivity. *)

type edge = { dst : int; weight : float }
type t

val create : int -> t
(** Raises [Invalid_argument] on negative node counts. *)

val node_count : t -> int

val add_edge : t -> src:int -> dst:int -> weight:float -> unit
(** Directed edge; raises [Invalid_argument] on out-of-range nodes or
    negative weights (Dijkstra). *)

val add_undirected : t -> int -> int -> weight:float -> unit
val neighbors : t -> int -> edge list
val edge_count : t -> int

val dijkstra : t -> src:int -> float array * int array
(** Arrays of (distance, predecessor); unreachable nodes have infinite
    distance and predecessor -1. *)

val shortest_path : t -> src:int -> dst:int -> int list option
(** Node list from [src] to [dst] inclusive, or [None] when unreachable. *)

val path_cost : t -> int list -> float
(** Sum of edge weights along a path; raises [Not_found] on a missing
    edge. *)

val hops : t -> src:int -> int array
(** BFS hop counts (unit edge weight); -1 for unreachable nodes. *)

val is_connected : t -> bool
(** Every node reachable from node 0 (undirected usage). *)
