(** Data-collection trees and network lifetime (first-node-death metric,
    experiment E11): interior nodes forward their whole subtree's traffic,
    so they die first. *)

open Amb_units

type tree = {
  sink : int;
  parent : int array;  (** parent.(sink) = -1; -2 when disconnected *)
  subtree_size : int array;  (** nodes (incl. self) whose traffic crosses i *)
}

val collection_tree :
  Routing.t -> policy:Routing.policy -> residual:(int -> Energy.t) -> sink:int -> tree
(** Shortest-path tree to the sink under the policy's edge weights. *)

val connected_count : tree -> int

val per_round_energy : Routing.t -> tree -> int -> Energy.t
(** Radio energy node [i] spends per round: transmit its subtree's
    packets to its parent, receive its children's.  The sink only
    receives. *)

val lifetime_rounds : Routing.t -> tree -> budget:(int -> Energy.t) -> float
(** Rounds until the first non-sink node exhausts its budget; infinite if
    nothing drains. *)

val simulate_depletion :
  Routing.t ->
  policy:Routing.policy ->
  budget:(int -> Energy.t) ->
  sink:int ->
  rebuild_every:float ->
  float
(** Rounds to first death with residuals depleted as rounds pass; the
    tree is rebuilt against current residuals every [rebuild_every]
    rounds, so [Max_lifetime] reroutes around draining bottlenecks.
    Advances in closed-form blocks (no per-round loop). *)

val bottleneck : Routing.t -> tree -> budget:(int -> Energy.t) -> (int * float) option
(** The node that dies first and its rounds-to-death. *)
