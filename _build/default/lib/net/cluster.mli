(** Cluster-based data collection (LEACH-style analysis): a fraction of
    nodes act as heads each round; members send one short hop, heads
    aggregate and send one long hop to the sink. *)

open Amb_units

type t = {
  nodes : int;
  field_m : float;  (** square field edge length *)
  sink_distance_m : float;  (** average head-to-sink distance *)
  e_elec_per_bit : Energy.t;  (** electronics energy per bit, TX or RX *)
  e_amp_j_per_bit_m2 : float;  (** PA energy per bit per m^2 (free-space) *)
  aggregation_ratio : float;  (** residual member-traffic share a head re-emits *)
  bits_per_round : float;  (** bits produced per node per round *)
}

val make :
  ?aggregation_ratio:float ->
  nodes:int ->
  field_m:float ->
  sink_distance_m:float ->
  e_elec_nj_per_bit:float ->
  e_amp_pj_per_bit_m2:float ->
  bits_per_round:float ->
  unit ->
  t
(** Default aggregation ratio 0.1.  Raises [Invalid_argument] with fewer
    than two nodes or a ratio outside [0,1]. *)

val expected_member_distance_sq : t -> head_fraction:float -> float
(** Expected squared member-to-head distance: M^2 / (2 pi k). *)

val round_energy : t -> head_fraction:float -> Energy.t
(** Expected total network energy per collection round; raises
    [Invalid_argument] for fractions outside (0,1]. *)

val direct_energy : t -> Energy.t
(** The no-clustering baseline: every node transmits straight to the
    sink. *)

val optimal_head_fraction : t -> float
(** Numeric minimiser of {!round_energy} over (0, 0.5]. *)
