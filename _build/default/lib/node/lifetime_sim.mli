(** Event-driven node-lifetime simulation — the discrete-event
    counterpart of the closed-form duty-cycle algebra (cross-checked by
    experiment E12): activations drawn from a traffic process, continuous
    sleep drain and (optionally diurnal) harvest income, death on battery
    exhaustion. *)

open Amb_units
open Amb_energy

type outcome = {
  lifetime : Time_span.t;  (** simulated time until death (or the horizon) *)
  died : bool;
  activations : int;
  energy_consumed : Energy.t;
  energy_harvested : Energy.t;
  average_power : Power.t;  (** consumption averaged over the run *)
}

type config = {
  profile : Duty_cycle.profile;
  supply : Supply.t;
  activation_traffic : Amb_workload.Traffic.t;
  horizon : Time_span.t;  (** stop simulating here even if still alive *)
  harvest_update_period : Time_span.t;  (** harvester integration step *)
  income_multiplier : (float -> float) option;
      (** optional diurnal profile: simulation time (s) -> harvest scale *)
}

val config :
  ?harvest_update_period:Time_span.t ->
  ?income_multiplier:(float -> float) ->
  profile:Duty_cycle.profile ->
  supply:Supply.t ->
  activation_traffic:Amb_workload.Traffic.t ->
  horizon:Time_span.t ->
  unit ->
  config
(** Default integration step 10 minutes.  Raises [Invalid_argument] on a
    non-positive horizon. *)

val run : config -> seed:int -> outcome
(** Simulate one node until battery death or the horizon; deterministic
    in the seed. *)

val replicate : config -> seeds:int list -> Time_span.t * Time_span.t * outcome list
(** Independent replications: (mean lifetime, lifetime std-error,
    outcomes). *)
