(** Composed device model: processor + radio + sensors + supply — the
    "device" of the keynote, with computing, communication and interface
    electronics from [Amb_circuit] powered by an [Amb_energy.Supply]. *)

open Amb_units
open Amb_circuit
open Amb_energy

type t = {
  name : string;
  processor : Processor.t;
  radio : Radio_frontend.t;
  sensors : Sensor.t list;
  adc : Adc.t option;
  display : Display.t option;
  supply : Supply.t;
  sleep_power : Power.t;  (** whole-node retention floor *)
  tx_dbm : float;  (** default transmit level *)
}

val make :
  ?sensors:Sensor.t list ->
  ?adc:Adc.t ->
  ?display:Display.t ->
  ?tx_dbm:float ->
  name:string ->
  processor:Processor.t ->
  radio:Radio_frontend.t ->
  supply:Supply.t ->
  sleep_power:Power.t ->
  unit ->
  t

(** One activation: sample the sensors, run [compute_ops], exchange
    [tx_bits]/[rx_bits]. *)
type activation = {
  samples_per_sensor : float;
  compute_ops : float;
  tx_bits : float;
  rx_bits : float;
}

val activation :
  ?samples_per_sensor:float -> ?rx_bits:float -> compute_ops:float -> tx_bits:float -> unit -> activation
(** Raises [Invalid_argument] on negative demands. *)

type cycle_breakdown = {
  sensing : Energy.t;
  conversion : Energy.t;
  computation : Energy.t;
  communication : Energy.t;
  total : Energy.t;
}

val cycle_breakdown : t -> activation -> cycle_breakdown
(** Per-subsystem energy of one activation (the E3 budget table). *)

val cycle_energy : t -> activation -> Energy.t

val cycle_duration : t -> activation -> Time_span.t
(** Active wall-clock time of one activation (sequential model). *)

val duty_profile : t -> activation -> Duty_cycle.profile

val average_power : t -> activation -> rate:float -> Power.t
(** Long-run power at a given activation rate. *)

val lifetime : t -> activation -> rate:float -> Time_span.t

val peak_power : t -> Power.t
(** All subsystems on at once — the constraint on the battery's maximum
    continuous current. *)

val supports_peak : t -> bool
(** Does the supply's battery deliver the peak current?  (Mains and
    battery-less nodes pass trivially.) *)
