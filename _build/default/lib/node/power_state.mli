(** Node power-state machines: one named state with a constant draw at any
    instant, transitions with fixed energy and latency.  Average power
    over a repeating schedule is the identity experiment E12 checks
    against the discrete-event simulator. *)

open Amb_units

type state = { name : string; power : Power.t }

type transition = {
  from_state : string;
  to_state : string;
  latency : Time_span.t;
  energy : Energy.t;
}

type t = {
  states : state list;
  transitions : transition list;
  initial : string;
}

val make : states:state list -> transitions:transition list -> initial:string -> t
(** Raises [Invalid_argument] on unknown initial or transition states. *)

val power_of : t -> string -> Power.t
(** Raises [Not_found] on unknown states. *)

val transition : t -> from_state:string -> to_state:string -> transition
(** The declared transition, or a free instantaneous one if none is
    declared. *)

(** A step of a repeating schedule: dwell in [state] for [dwell]. *)
type schedule_step = { state : string; dwell : Time_span.t }

val cycle_energy : t -> schedule_step list -> Energy.t
(** Energy of one pass through the schedule, including the loop-back
    transition; raises on an empty schedule. *)

val cycle_duration : t -> schedule_step list -> Time_span.t
(** Wall-clock length of one pass, transition latencies included. *)

val average_power : t -> schedule_step list -> Power.t

val stretch_sleep : t -> schedule_step list -> sleep_state:string -> period:Time_span.t -> schedule_step list
(** Pad the schedule's (single) [sleep_state] step so the cycle lasts
    exactly [period]; raises if the active part already exceeds it or no
    such step exists. *)
