(** Composed device model: processor + radio + sensors + supply.

    This is the "device" of the keynote: computing, communication and
    interface electronics drawn from [Amb_circuit], powered by an
    [Amb_energy.Supply].  The model can evaluate a sense-process-transmit
    activation cycle and its long-run average power under a scenario. *)

open Amb_units
open Amb_circuit
open Amb_energy

type t = {
  name : string;
  processor : Processor.t;
  radio : Radio_frontend.t;
  sensors : Sensor.t list;
  adc : Adc.t option;
  display : Display.t option;
  supply : Supply.t;
  sleep_power : Power.t;  (** whole-node retention floor *)
  tx_dbm : float;  (** default transmit level *)
}

let make ?(sensors = []) ?adc ?display ?(tx_dbm = 0.0) ~name ~processor ~radio ~supply
    ~sleep_power () =
  { name; processor; radio; sensors; adc; display; supply; sleep_power; tx_dbm }

(** One activation: sample the sensors, run [compute_ops] on the
    processor, exchange [tx_bits]/[rx_bits] over the radio. *)
type activation = {
  samples_per_sensor : float;
  compute_ops : float;
  tx_bits : float;
  rx_bits : float;
}

let activation ?(samples_per_sensor = 1.0) ?(rx_bits = 0.0) ~compute_ops ~tx_bits () =
  if compute_ops < 0.0 || tx_bits < 0.0 || rx_bits < 0.0 || samples_per_sensor < 0.0 then
    invalid_arg "Node_model.activation: negative demand";
  { samples_per_sensor; compute_ops; tx_bits; rx_bits }

type cycle_breakdown = {
  sensing : Energy.t;
  conversion : Energy.t;
  computation : Energy.t;
  communication : Energy.t;
  total : Energy.t;
}

(** [cycle_breakdown node act] — per-subsystem energy of one activation
    (the E3 budget table). *)
let cycle_breakdown node act =
  let sensing =
    Energy.scale act.samples_per_sensor
      (Energy.sum (List.map (fun s -> s.Sensor.sample_energy) node.sensors))
  in
  let conversion =
    match node.adc with
    | None -> Energy.zero
    | Some adc ->
      let samples = act.samples_per_sensor *. Float.of_int (List.length node.sensors) in
      Energy.scale samples (Adc.energy_per_sample adc)
  in
  let computation = Energy.scale act.compute_ops (Processor.energy_per_op node.processor) in
  let communication =
    let tx =
      if act.tx_bits > 0.0 then
        Radio_frontend.transmit_energy node.radio ~tx_dbm:node.tx_dbm ~bits:act.tx_bits
          ~include_startup:true
      else Energy.zero
    in
    let rx =
      if act.rx_bits > 0.0 then
        Radio_frontend.receive_energy node.radio ~bits:act.rx_bits ~include_startup:false
      else Energy.zero
    in
    Energy.add tx rx
  in
  let total = Energy.sum [ sensing; conversion; computation; communication ] in
  { sensing; conversion; computation; communication; total }

(** [cycle_energy node act]. *)
let cycle_energy node act = (cycle_breakdown node act).total

(** [cycle_duration node act] — active wall-clock time of one activation:
    sensing settles, compute runs at full throughput, radio bursts at the
    bitrate (sequential model). *)
let cycle_duration node act =
  let settle =
    List.fold_left (fun acc s -> Time_span.max acc s.Sensor.settle_time) Time_span.zero
      node.sensors
  in
  let compute =
    let capacity = Frequency.to_hertz (Processor.max_throughput node.processor) in
    if capacity <= 0.0 then Time_span.zero else Time_span.seconds (act.compute_ops /. capacity)
  in
  let airtime =
    let bits = act.tx_bits +. act.rx_bits in
    if bits <= 0.0 then Time_span.zero
    else
      Time_span.add
        (Data_rate.transfer_time node.radio.Radio_frontend.bitrate bits)
        node.radio.Radio_frontend.startup_time
  in
  Time_span.sum [ settle; compute; airtime ]

(** [duty_profile node act] — the {!Duty_cycle.profile} of this node under
    activation [act]. *)
let duty_profile node act =
  Duty_cycle.make ~cycle_energy:(cycle_energy node act) ~cycle_duration:(cycle_duration node act)
    ~sleep_power:node.sleep_power

(** [average_power node act ~rate] — long-run power at [rate]
    activations/s. *)
let average_power node act ~rate = Duty_cycle.average_power (duty_profile node act) ~rate

(** [lifetime node act ~rate] — on the node's own supply. *)
let lifetime node act ~rate = Supply.lifetime node.supply (average_power node act ~rate)

(** [peak_power node] — all subsystems on at once: the constraint the
    battery's maximum continuous current must satisfy. *)
let peak_power node =
  let processor = Processor.power_at node.processor (Processor.vdd_nominal node.processor) ~utilization:1.0 in
  let radio = Radio_frontend.tx_power node.radio ~tx_dbm:node.tx_dbm in
  let interface =
    match node.display with
    | None -> Power.zero
    | Some d -> Display.average_power d ~brightness:1.0 ~updates_per_s:0.0
  in
  Power.sum [ processor; radio; interface ]

(** [supports_peak node] — does the supply's battery deliver the peak
    current?  Mains and battery-less harvester nodes (buffered by storage)
    pass trivially. *)
let supports_peak node =
  match node.supply.Supply.battery with
  | None -> true
  | Some battery -> Battery.supports battery ~peak:(peak_power node)
