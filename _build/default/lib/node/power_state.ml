(** Node power-state machines.

    A node is, at any instant, in one named state with a constant power
    draw; transitions cost fixed energy and latency (oscillator start-up,
    voltage-rail ramping, radio synthesizer settling).  Average power over
    a repeating schedule is the weighted state power plus the transition
    energy amortised over the cycle — the identity experiment E12 checks
    against the discrete-event simulator. *)

open Amb_units

type state = { name : string; power : Power.t }

type transition = {
  from_state : string;
  to_state : string;
  latency : Time_span.t;
  energy : Energy.t;
}

type t = {
  states : state list;
  transitions : transition list;
  initial : string;
}

let make ~states ~transitions ~initial =
  if not (List.exists (fun s -> s.name = initial) states) then
    invalid_arg "Power_state.make: unknown initial state";
  let known name = List.exists (fun s -> s.name = name) states in
  List.iter
    (fun t ->
      if not (known t.from_state && known t.to_state) then
        invalid_arg "Power_state.make: transition references unknown state")
    transitions;
  { states; transitions; initial }

(** [power_of machine name] — draw of state [name]; raises [Not_found]. *)
let power_of machine name =
  match List.find_opt (fun s -> s.name = name) machine.states with
  | Some s -> s.power
  | None -> raise Not_found

(** [transition machine ~from_state ~to_state] — the declared transition,
    or a free instantaneous one if none is declared. *)
let transition machine ~from_state ~to_state =
  match
    List.find_opt (fun t -> t.from_state = from_state && t.to_state = to_state)
      machine.transitions
  with
  | Some t -> t
  | None -> { from_state; to_state; latency = Time_span.zero; energy = Energy.zero }

(** A step of a repeating schedule: dwell in [state] for [dwell]. *)
type schedule_step = { state : string; dwell : Time_span.t }

(** [cycle_energy machine schedule] — energy of one pass through
    [schedule], including the transition closing the loop back to the
    first step.  Raises on an empty schedule or non-positive dwell. *)
let cycle_energy machine schedule =
  match schedule with
  | [] -> invalid_arg "Power_state.cycle_energy: empty schedule"
  | first :: _ ->
    let rec walk steps acc =
      match steps with
      | [] -> acc
      | [ last ] ->
        let dwell = Energy.of_power_time (power_of machine last.state) last.dwell in
        let loop_back = transition machine ~from_state:last.state ~to_state:first.state in
        Energy.sum [ acc; dwell; loop_back.energy ]
      | a :: (b :: _ as rest) ->
        let dwell = Energy.of_power_time (power_of machine a.state) a.dwell in
        let hop = transition machine ~from_state:a.state ~to_state:b.state in
        walk rest (Energy.sum [ acc; dwell; hop.energy ])
    in
    walk schedule Energy.zero

(** [cycle_duration machine schedule] — wall-clock length of one pass,
    transition latencies included. *)
let cycle_duration machine schedule =
  match schedule with
  | [] -> invalid_arg "Power_state.cycle_duration: empty schedule"
  | first :: _ ->
    let rec walk steps acc =
      match steps with
      | [] -> acc
      | [ last ] ->
        let loop_back = transition machine ~from_state:last.state ~to_state:first.state in
        Time_span.sum [ acc; last.dwell; loop_back.latency ]
      | a :: (b :: _ as rest) ->
        let hop = transition machine ~from_state:a.state ~to_state:b.state in
        walk rest (Time_span.sum [ acc; a.dwell; hop.latency ])
    in
    walk schedule Time_span.zero

(** [average_power machine schedule] — cycle energy over cycle duration. *)
let average_power machine schedule =
  let e = cycle_energy machine schedule and t = cycle_duration machine schedule in
  Energy.average_power e t

(** [stretch_sleep machine schedule ~sleep_state ~period] — pad the
    schedule's [sleep_state] step so that the full cycle lasts exactly
    [period]; raises if the active part already exceeds [period] or the
    schedule has no such step. *)
let stretch_sleep machine schedule ~sleep_state ~period =
  if not (List.exists (fun step -> step.state = sleep_state) schedule) then
    invalid_arg "Power_state.stretch_sleep: no sleep step in schedule";
  let zero_sleep =
    List.map (fun step -> if step.state = sleep_state then { step with dwell = Time_span.zero } else step)
      schedule
  in
  let active = cycle_duration machine zero_sleep in
  let slack = Time_span.sub period active in
  if Time_span.to_seconds slack < 0.0 then
    invalid_arg "Power_state.stretch_sleep: active time exceeds period";
  List.map
    (fun step -> if step.state = sleep_state then { step with dwell = slack } else step)
    zero_sleep
