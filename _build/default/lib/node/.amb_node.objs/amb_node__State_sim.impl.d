lib/node/state_sim.ml: Amb_sim Amb_units Array Energy Engine Power Power_state Si Stat Time_span Trace
