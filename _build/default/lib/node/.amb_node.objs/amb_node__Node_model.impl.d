lib/node/node_model.ml: Adc Amb_circuit Amb_energy Amb_units Battery Data_rate Display Duty_cycle Energy Float Frequency List Power Processor Radio_frontend Sensor Supply Time_span
