lib/node/state_sim.mli: Amb_sim Amb_units Energy Power Power_state Time_span Trace
