lib/node/reference_designs.mli: Amb_energy Harvester Node_model
