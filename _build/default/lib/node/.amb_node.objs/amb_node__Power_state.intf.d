lib/node/power_state.mli: Amb_units Energy Power Time_span
