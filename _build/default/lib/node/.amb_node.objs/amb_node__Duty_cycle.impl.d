lib/node/duty_cycle.ml: Amb_energy Amb_units Energy Float Lifetime List Power Supply Time_span
