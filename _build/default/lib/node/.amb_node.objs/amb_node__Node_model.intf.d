lib/node/node_model.mli: Adc Amb_circuit Amb_energy Amb_units Display Duty_cycle Energy Power Processor Radio_frontend Sensor Supply Time_span
