lib/node/duty_cycle.mli: Amb_energy Amb_units Energy Power Supply Time_span
