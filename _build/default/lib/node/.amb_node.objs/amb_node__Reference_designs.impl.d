lib/node/reference_designs.ml: Adc Amb_circuit Amb_energy Amb_radio Amb_units Battery Display Harvester Node_model Power Processor Radio_frontend Sensor Supply
