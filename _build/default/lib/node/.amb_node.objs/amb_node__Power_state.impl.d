lib/node/power_state.ml: Amb_units Energy List Power Time_span
