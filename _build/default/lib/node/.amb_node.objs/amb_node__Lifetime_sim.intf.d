lib/node/lifetime_sim.mli: Amb_energy Amb_units Amb_workload Duty_cycle Energy Power Supply Time_span
