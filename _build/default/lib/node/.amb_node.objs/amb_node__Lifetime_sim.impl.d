lib/node/lifetime_sim.ml: Amb_energy Amb_sim Amb_units Amb_workload Battery Duty_cycle Energy Engine Float List Power Rng Stat Supply Time_span
