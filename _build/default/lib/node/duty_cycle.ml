(** Duty-cycle algebra for sense-process-transmit nodes.

    The microWatt node's whole design space is a single trade-off: how
    often to wake.  Given the energy of one activation cycle and the sleep
    floor, this module answers the three standing questions — average
    power at a rate, maximum rate within a power budget, and lifetime on a
    given supply. *)

open Amb_units
open Amb_energy

type profile = {
  cycle_energy : Energy.t;  (** energy of one full activation *)
  cycle_duration : Time_span.t;  (** active time of one activation *)
  sleep_power : Power.t;  (** floor while idle *)
}

let make ~cycle_energy ~cycle_duration ~sleep_power =
  if Time_span.to_seconds cycle_duration < 0.0 then
    invalid_arg "Duty_cycle.make: negative cycle duration";
  { cycle_energy; cycle_duration; sleep_power }

(** [average_power profile ~rate] — sleep floor plus amortised cycle cost
    at [rate] activations per second.  Raises when the duty cycle would
    exceed 1. *)
let average_power profile ~rate =
  if rate < 0.0 then invalid_arg "Duty_cycle.average_power: negative rate";
  let duty = rate *. Time_span.to_seconds profile.cycle_duration in
  if duty > 1.0 +. 1e-9 then invalid_arg "Duty_cycle.average_power: duty cycle above 1";
  (* The sleep floor applies to the idle fraction only; the active
     fraction's power is inside cycle_energy. *)
  Power.add
    (Power.scale (1.0 -. Float.min 1.0 duty) profile.sleep_power)
    (Power.watts (rate *. Energy.to_joules profile.cycle_energy))

(** [duty profile ~rate] — active fraction of time. *)
let duty profile ~rate = Float.min 1.0 (rate *. Time_span.to_seconds profile.cycle_duration)

(** [max_rate profile ~budget] — highest activation rate whose average
    power stays within [budget]; [None] when even pure sleep exceeds it. *)
let max_rate profile ~budget =
  let b = Power.to_watts budget and s = Power.to_watts profile.sleep_power in
  if b < s then None
  else
    let e = Energy.to_joules profile.cycle_energy in
    let dur = Time_span.to_seconds profile.cycle_duration in
    if e <= s *. dur then
      (* Each activation is cheaper than sleeping through it: rate is
         bounded only by back-to-back activation. *)
      Some (if dur <= 0.0 then Float.infinity else 1.0 /. dur)
    else
      let rate = (b -. s) /. (e -. (s *. dur)) in
      let max_physical = if dur <= 0.0 then Float.infinity else 1.0 /. dur in
      Some (Float.min rate max_physical)

(** [lifetime profile supply ~rate] — node lifetime on [supply] at
    [rate]. *)
let lifetime profile supply ~rate = Supply.lifetime supply (average_power profile ~rate)

(** [autonomy_rate profile supply] — highest activation rate the supply's
    harvester sustains forever; [None] when even sleep exceeds the
    harvest income. *)
let autonomy_rate profile supply =
  let income = Supply.harvest_income supply in
  Lifetime.rate_for_autonomy ~cycle_energy:profile.cycle_energy ~sleep:profile.sleep_power ~income

(** [sweep profile supply ~rates] — (rate, average power, lifetime) rows:
    the data behind the E4 lifetime curve. *)
let sweep profile supply ~rates =
  let row rate =
    let p = average_power profile ~rate in
    (rate, p, Supply.lifetime supply p)
  in
  List.map row rates
