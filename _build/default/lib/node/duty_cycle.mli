(** Duty-cycle algebra for sense-process-transmit nodes: average power at
    an activation rate, maximum rate within a power budget, and lifetime
    on a supply. *)

open Amb_units
open Amb_energy

type profile = {
  cycle_energy : Energy.t;  (** energy of one full activation *)
  cycle_duration : Time_span.t;  (** active time of one activation *)
  sleep_power : Power.t;  (** floor while idle *)
}

val make : cycle_energy:Energy.t -> cycle_duration:Time_span.t -> sleep_power:Power.t -> profile
(** Raises [Invalid_argument] on negative cycle durations. *)

val average_power : profile -> rate:float -> Power.t
(** Sleep floor (idle fraction) plus amortised cycle cost; raises when
    the duty cycle would exceed 1. *)

val duty : profile -> rate:float -> float
(** Active fraction of time. *)

val max_rate : profile -> budget:Power.t -> float option
(** Highest activation rate within an average-power budget; [None] when
    even pure sleep exceeds it; capped at back-to-back activation. *)

val lifetime : profile -> Supply.t -> rate:float -> Time_span.t

val autonomy_rate : profile -> Supply.t -> float option
(** Highest rate the supply's harvester sustains forever. *)

val sweep : profile -> Supply.t -> rates:float list -> (float * Power.t * Time_span.t) list
(** (rate, average power, lifetime) rows — the E4 lifetime curve. *)
