(** Executing power-state schedules on the discrete-event engine,
    measuring average power with a time-weighted accumulator plus
    transition-energy impulses — must agree exactly with
    {!Power_state.average_power}. *)

open Amb_units
open Amb_sim

type outcome = {
  cycles_completed : int;
  simulated_time : Time_span.t;
  energy : Energy.t;  (** dwell energy + transition impulses *)
  average_power : Power.t;
  trace : Trace.t;  (** one entry per state entry/transition *)
}

val run : Power_state.t -> Power_state.schedule_step list -> cycles:int -> outcome
(** Execute a number of passes through the schedule.  Raises like
    {!Power_state.cycle_energy} on invalid schedules and
    [Invalid_argument] on non-positive cycle counts. *)

val matches_closed_form :
  Power_state.t -> Power_state.schedule_step list -> cycles:int -> rel:float -> bool
(** Simulated average power vs {!Power_state.average_power} at a relative
    tolerance. *)
