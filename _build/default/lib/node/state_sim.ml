(** Executing power-state schedules on the discrete-event engine.

    Where {!Power_state.average_power} computes the closed-form average of
    a repeating schedule, this module actually *runs* the schedule on
    [Amb_sim.Engine], records a state trace, and measures average power
    with a time-weighted accumulator plus transition-energy impulses.
    The two must agree exactly — a structural invariant tested in the
    node suite. *)

open Amb_units
open Amb_sim

type outcome = {
  cycles_completed : int;
  simulated_time : Time_span.t;
  energy : Energy.t;  (** dwell energy + transition impulses *)
  average_power : Power.t;
  trace : Trace.t;  (** one entry per state entry/transition *)
}

(** [run machine schedule ~cycles] — execute [cycles] passes through the
    schedule.  Raises like {!Power_state.cycle_energy} on invalid
    schedules, and [Invalid_argument] on non-positive cycle counts. *)
let run machine schedule ~cycles =
  if cycles <= 0 then invalid_arg "State_sim.run: non-positive cycle count";
  (* Validate the schedule once up front (raises on empty/unknown). *)
  let _ = Power_state.cycle_energy machine schedule in
  let engine = Engine.create () in
  let trace = Trace.create () in
  let accumulator = Stat.time_weighted () in
  let impulse_energy = ref 0.0 in
  let completed = ref 0 in
  let steps = Array.of_list schedule in
  let step_count = Array.length steps in
  let record engine label power =
    let t = Time_span.to_seconds (Engine.now engine) in
    Trace.record trace ~time:t label;
    Stat.update accumulator ~time:t ~value:(Power.to_watts power)
  in
  (* Enter step [i] of the current cycle: dwell, then transition to the
     next step (possibly wrapping into the next cycle). *)
  let rec enter engine i remaining_cycles =
    let step = steps.(i) in
    let power = Power_state.power_of machine step.Power_state.state in
    record engine ("enter:" ^ step.Power_state.state) power;
    Engine.schedule engine ~delay:step.Power_state.dwell (fun engine ->
        let next_index = (i + 1) mod step_count in
        let wrapping = next_index = 0 in
        let remaining_cycles = if wrapping then remaining_cycles - 1 else remaining_cycles in
        let transition =
          Power_state.transition machine ~from_state:step.Power_state.state
            ~to_state:steps.(next_index).Power_state.state
        in
        impulse_energy := !impulse_energy +. Energy.to_joules transition.Power_state.energy;
        record engine
          ("transition:" ^ step.Power_state.state ^ "->" ^ steps.(next_index).Power_state.state)
          Power.zero;
        Engine.schedule engine ~delay:transition.Power_state.latency (fun engine ->
            if wrapping then incr completed;
            if remaining_cycles > 0 then enter engine next_index remaining_cycles
            else Engine.stop engine))
  in
  enter engine 0 cycles;
  let final = Engine.run engine in
  Stat.close accumulator ~time:(Time_span.to_seconds final);
  let dwell_energy = Stat.integral accumulator in
  let total_energy = dwell_energy +. !impulse_energy in
  let elapsed = Time_span.to_seconds final in
  {
    cycles_completed = !completed;
    simulated_time = final;
    energy = Energy.joules total_energy;
    average_power =
      (if elapsed > 0.0 then Power.watts (total_energy /. elapsed) else Power.zero);
    trace;
  }

(** [matches_closed_form machine schedule ~cycles ~rel] — does the
    simulated average power agree with {!Power_state.average_power} to
    relative tolerance [rel]?  (Transition power during latency windows is
    modelled as zero in both.) *)
let matches_closed_form machine schedule ~cycles ~rel =
  let simulated = run machine schedule ~cycles in
  let analytic = Power_state.average_power machine schedule in
  Si.approx_equal ~rel
    (Power.to_watts simulated.average_power)
    (Power.to_watts analytic)
